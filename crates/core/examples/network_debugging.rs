//! Network debugging and optimisation (Sec. 4.4): "Our system provides
//! means to collect traffic statistics within the network. Link delays or
//! packet loss on intermediate links could be measured for network
//! debugging purposes."
//!
//! A content provider deploys the `Statistics` catalog service on every
//! adaptive device along its traffic's paths, sends a handful of probe
//! packets to a client, then collects the per-device digest logs. Because
//! each log entry carries the device's local arrival timestamp and the
//! packet digest is stable along the path, joining the logs by digest
//! reconstructs each probe's per-hop timeline — per-segment one-way delays
//! measured *inside* the network, no router cooperation beyond the TCS
//! needed. The measured segment delays are checked against the ground-truth
//! link latencies of the topology.
//!
//! Run with: `cargo run --release -p dtcs --example network_debugging`

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs::control::CatalogService;
use dtcs::device::support::LogEntry;
use dtcs::device::view::digest_packet;
use dtcs::device::{AdaptiveDevice, DeviceCommand, DeviceReply, OwnerId, Stage};
use dtcs::netsim::{
    Addr, AgentCtx, ControlMsg, LinkId, NodeAgent, NodeId, Packet, PacketBuilder, Prefix, Proto,
    SimTime, Simulator, Topology, TrafficClass,
};

fn main() {
    let topo = Topology::line(6); // a clean 5-link path to audit
    let mut sim = Simulator::new(topo, 3);
    let me = NodeId(0); // the content provider's AS
    let client = Addr::new(NodeId(5), 1);
    sim.install_app(client, Box::new(dtcs::netsim::SinkApp));

    // Deploy Statistics (sample every packet) on every device, scoped to
    // traffic whose *source* is the provider's prefix — stage 1.
    let owner = OwnerId(11);
    let svc = CatalogService::Statistics {
        capacity: 1024,
        sample_one_in: 1,
    };
    for i in 0..sim.topo.n() {
        let node = NodeId(i);
        let (mut dev, _h) = AdaptiveDevice::new(node, None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner,
            prefixes: vec![Prefix::of_node(me)],
            contact: me,
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner,
            stage: Stage::Src,
            spec: svc.compile(),
        });
        sim.add_agent(node, Box::new(dev));
    }

    // Probes with distinct tags.
    let probes: Vec<PacketBuilder> = (0..5u64)
        .map(|k| {
            PacketBuilder::new(
                Addr::new(me, 1),
                client,
                Proto::TcpData,
                TrafficClass::Background,
            )
            .size(400)
            .tag(0xDE8_000 + k)
            .flow(k)
        })
        .collect();
    for (k, b) in probes.iter().enumerate() {
        let b = *b;
        sim.schedule(SimTime::from_millis(100 * (k as u64 + 1)), move |s| {
            s.emit_now(me, b);
        });
    }
    sim.run_until(SimTime::from_secs(2));

    // Collect every device's log via ReadLog; replies land on a probe
    // agent installed at the provider's node.
    type LogsByNode = BTreeMap<usize, Vec<LogEntry>>;
    #[derive(Default)]
    struct Collector(Arc<Mutex<LogsByNode>>);
    impl NodeAgent for Collector {
        fn name(&self) -> &'static str {
            "log-collector"
        }
        fn on_packet(
            &mut self,
            _: &mut AgentCtx<'_>,
            _: &mut Packet,
            _: Option<LinkId>,
        ) -> dtcs::netsim::Verdict {
            dtcs::netsim::Verdict::Forward
        }
        fn on_control(&mut self, _ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
            if let Some(DeviceReply::LogData { node, entries, .. }) = msg.get::<DeviceReply>() {
                self.0.lock().insert(node.0, entries.clone());
            }
        }
    }
    let logs: Arc<Mutex<LogsByNode>> = Arc::default();
    sim.add_agent(me, Box::new(Collector(logs.clone())));
    for i in 0..sim.topo.n() {
        sim.deliver_control(
            SimTime::from_secs(3),
            me,
            NodeId(i),
            DeviceCommand::ReadLog {
                owner,
                stage: Stage::Src,
                reply_to: me,
            },
        );
    }
    sim.run_until(SimTime::from_secs(5));

    // Join logs by digest: per-probe, per-node arrival times.
    let logs = logs.lock();
    println!("collected logs from {} devices", logs.len());
    let mut timelines: BTreeMap<u64, Vec<(usize, SimTime)>> = BTreeMap::new();
    for (&node, entries) in logs.iter() {
        for e in entries {
            timelines.entry(e.digest).or_default().push((node, e.at));
        }
    }

    // Per-segment delays, averaged over probes.
    let mut seg_delays: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
    for (_digest, mut timeline) in timelines {
        timeline.sort_by_key(|&(_, at)| at);
        for w in timeline.windows(2) {
            let (a, ta) = w[0];
            let (b, tb) = w[1];
            seg_delays
                .entry((a, b))
                .or_default()
                .push((tb - ta).as_secs_f64() * 1e3);
        }
    }
    println!("\nsegment        measured (ms)   ground truth (ms)");
    let probe = probes[0].build(0, me);
    let _ = digest_packet(&probe); // digests are what joined the logs above
    for ((a, b), delays) in &seg_delays {
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        // Ground truth: the link's latency plus its transmission time.
        let link = sim
            .topo
            .neighbours(NodeId(*a))
            .find(|(n, _)| n.0 == *b)
            .map(|(_, l)| &sim.topo.links[l.0])
            .expect("adjacent");
        let truth = link.latency.as_secs_f64() * 1e3 + 400.0 * 8.0 / link.bandwidth_bps * 1e3;
        println!("{a} -> {b}        {mean:>8.3}        {truth:>8.3}");
        assert!(
            (mean - truth).abs() < 0.5,
            "measured delay must match topology ground truth"
        );
    }
    println!("\nper-segment one-way delays recovered from in-network statistics logs alone.");
}
