//! Reflector-attack anatomy and defense comparison (Figs. 1 vs Sec. 4.3).
//!
//! Dissects one DDoS reflector attack — amplification factors, who the
//! victim *appears* to be attacked by — then replays it under each
//! mitigation scheme of the paper's Sec. 3 analysis and prints the
//! comparison table (the interactive version of experiment E2).
//!
//! Run with: `cargo run --release -p dtcs --example reflector_defense`

use dtcs::attack::{ReflectorAttack, ReflectorAttackConfig};
use dtcs::netsim::{SimTime, Simulator, Topology, TrafficClass};
use dtcs::{print_table, run_scenario, OutcomeRow, ScenarioConfig, Scheme};

fn main() {
    anatomy();
    comparison();
}

/// Part 1: anatomy of the attack (Fig. 1 made measurable).
fn anatomy() {
    println!("== Part 1: anatomy of a reflector attack ==\n");
    let topo = Topology::barabasi_albert(150, 2, 0.1, 11);
    let mut sim = Simulator::new(topo, 11);
    let victim_node = sim.topo.stub_nodes()[3];
    let attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_masters: 3,
            n_agents: 50,
            n_reflectors: 100,
            agent_rate_pps: 40.0,
            start_at: SimTime::from_secs(1),
            stop_at: SimTime::from_secs(11),
            seed: 11,
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_secs(12));

    let control = sim.stats.class(TrafficClass::AttackControl);
    let direct = sim.stats.class(TrafficClass::AttackDirect);
    let reflected = sim.stats.class(TrafficClass::AttackReflected);
    println!("attacker control packets sent: {:>10}", control.sent_pkts);
    println!("agent (spoofed) requests sent: {:>10}", direct.sent_pkts);
    println!("reflected packets at victim:   {:>10}", reflected.sent_pkts);
    println!(
        "packet-rate amplification attacker->network: {:.0}x",
        (direct.sent_pkts + reflected.sent_pkts) as f64 / control.sent_pkts.max(1) as f64
    );
    println!(
        "byte amplification request->reply: {:.2}x",
        reflected.sent_bytes as f64 / direct.sent_bytes.max(1) as f64
    );
    let (reqs, attack_reqs) = attack.reflector_totals();
    println!(
        "reflector pool: {} servers, {} requests absorbed (all {} attack traffic)",
        attack.reflectors.len(),
        reqs,
        attack_reqs
    );
    // The crucial property: the packets hitting the victim carry REAL
    // reflector sources, not spoofed ones. Source-based blocking would hit
    // the innocent reflectors.
    let v = attack.victim_stats.lock();
    println!(
        "victim received {} packets, none from the true agents — all from innocent reflectors\n",
        v.received
    );
}

/// Part 2: every Sec. 3 scheme against the same attack (E2 interactive).
fn comparison() {
    println!("== Part 2: mitigation schemes vs the same attack ==\n");
    let cfg = ScenarioConfig::default();
    let schemes = Scheme::comparison_set(cfg.attack.start_at);
    let rows: Vec<Vec<String>> = schemes
        .iter()
        .map(|s| {
            eprintln!("  running {} ...", s.label());
            run_scenario(&cfg, s).row.cells()
        })
        .collect();
    print_table(&OutcomeRow::header(), &rows);
    println!(
        "\nReading guide: 'legit_ok' is victim-client success, 'collateral_ok' is third-party
success through reflector-hosted services, 'stop_dist' is mean hops from an attack
source at which its packets died (lower = closer to the source)."
    );
}
