//! Hierarchical timing wheel — the simulator's event queue.
//!
//! Replaces the `(time, seq)` `BinaryHeap`: under the near-uniform event
//! spacing our workloads produce (per-hop transmission delays, periodic
//! timers), a calendar-style wheel gives O(1) amortized push/pop where the
//! heap pays O(log n) sift moves per operation.
//!
//! # Structure
//!
//! [`LEVELS`] wheels of [`SLOTS`] slots each. Level `k` buckets times by
//! bits `[6k, 6k+6)` of the tick count, so level 0 resolves single
//! nanosecond ticks and each level up is 64× coarser; 11 levels × 6 bits
//! cover the whole `u64` tick range. An event is filed at the level of the
//! *highest* bit in which its time differs from the wheel's current
//! position (`horizon`): near events land in level 0, far events higher
//! up, and every event cascades down at most [`LEVELS`]−1 times before it
//! is popped. A per-level 64-bit occupancy bitmap turns "find the earliest
//! non-empty slot" into a `trailing_zeros`, so advancing over empty time
//! needs no per-tick scan — the wheel jumps.
//!
//! # Determinism
//!
//! Pop order is exactly ascending `(time, seq)`, bit-identical to the
//! heap it replaces:
//!
//! * A level-0 slot holds a single exact tick (1 ns granularity), so
//!   within-slot FIFO order *is* seq order, provided entries arrive in seq
//!   order — which they do: direct pushes carry globally increasing seqs,
//!   and a cascade (which preserves the relative order of the slot it
//!   drains) always lands in a lower-level slot *before* any direct push
//!   can target it, because a push only reaches a slot whose window
//!   contains `horizon` and cascades run exactly when `horizon` enters a
//!   window (see `pop_next`).
//! * Levels partition future time in increasing ranges — all level-k
//!   events precede all level-(k+1) events — so the earliest event always
//!   sits in the first occupied slot of the lowest occupied level.
//!
//! # Bounded advance
//!
//! [`TimingWheel::pop_next`] takes a `limit` and never advances `horizon`
//! beyond it. This matters for `Simulator::run_until`: the wheel's
//! position must stay ≤ simulated "now" so later pushes (which are ≥ now)
//! are never behind the wheel.

use std::collections::VecDeque;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; `LEVELS * SLOT_BITS >= 64` so any `u64` time is
/// representable (the top level only ever uses its first 16 slots).
pub const LEVELS: usize = 11;

/// One queued event: an exact tick, a tie-breaking sequence number, and
/// the caller's payload.
#[derive(Debug)]
pub struct Entry<K> {
    /// Absolute event time, in ticks (nanoseconds for the simulator).
    pub time: u64,
    /// Monotone tie-breaker assigned by the caller at push time.
    pub seq: u64,
    /// Caller payload.
    pub kind: K,
}

/// A hierarchical timing wheel priority queue over `(time, seq)` keys.
///
/// Not a general-purpose priority queue: pushes must not be earlier than
/// the wheel's current position (the last popped time, or the furthest
/// `pop_next` advanced to). The simulator guarantees this by clamping
/// past-dated events to `now` before pushing.
pub struct TimingWheel<K> {
    /// Current position in ticks. Invariant: `horizon <= e.time` for every
    /// stored entry, and `horizon` never exceeds the `limit` of any
    /// `pop_next` call.
    horizon: u64,
    /// Total stored entries.
    len: usize,
    /// Per-level occupancy bitmaps; bit `i` of `occupied[k]` set iff slot
    /// `k * SLOTS + i` is non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` slot buffers, row-major by level. FIFO within a
    /// slot (cascades preserve relative order; pushes append).
    slots: Vec<VecDeque<Entry<K>>>,
    /// Deepest any single slot has ever been (scheduler-health signal: a
    /// runaway slot means pathological same-window clustering).
    slot_depth_hwm: usize,
    /// Most entries ever stored at once.
    len_hwm: usize,
    /// Total entries refiled by cascades. Divided by events popped this
    /// should stay ≈ constant; drift signals pathological event spacing.
    cascade_moves: u64,
}

impl<K> Default for TimingWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> TimingWheel<K> {
    /// Empty wheel positioned at tick 0. Allocates the (empty) slot table
    /// only; slot buffers allocate lazily and retain their capacity, so a
    /// steady workload reaches a fixed memory footprint.
    pub fn new() -> Self {
        TimingWheel {
            horizon: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            slot_depth_hwm: 0,
            len_hwm: 0,
            cascade_moves: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of any single slot's depth since construction.
    pub fn slot_depth_hwm(&self) -> usize {
        self.slot_depth_hwm
    }

    /// High-water mark of total stored entries since construction.
    pub fn len_hwm(&self) -> usize {
        self.len_hwm
    }

    /// Total entries refiled by cascades since construction.
    pub fn cascade_moves(&self) -> u64 {
        self.cascade_moves
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current position: a lower bound on every stored entry's
    /// time, and the earliest time a future [`TimingWheel::push`] may use.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Level at which a time belongs relative to the current horizon: the
    /// index of the highest differing bit, divided by `SLOT_BITS`.
    #[inline]
    fn level_of(&self, time: u64) -> usize {
        let diff = time ^ self.horizon;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// Slot index of `time` within `level` (a pure function of `time`).
    #[inline]
    fn slot_index(level: usize, time: u64) -> usize {
        ((time >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Earliest tick covered by slot `idx` of `level`, relative to the
    /// current horizon's window at that level. Shifts are guarded so the
    /// top level (whose window spans the whole `u64` range) cannot
    /// overflow the shift amount.
    #[inline]
    fn slot_base(&self, level: usize, idx: usize) -> u64 {
        let low = SLOT_BITS as usize * level;
        let high = SLOT_BITS as usize * (level + 1);
        let high_bits = if high >= 64 {
            0
        } else {
            (self.horizon >> high) << high
        };
        high_bits | ((idx as u64) << low)
    }

    /// Insert an entry. `time` must be ≥ [`TimingWheel::horizon`]; an
    /// earlier time would land in a slot the wheel has already passed and
    /// never be popped, so this is enforced unconditionally (the check is
    /// one predictable branch on the hot path).
    ///
    /// For exact heap-equivalent ordering, callers must assign `seq`
    /// monotonically increasing across pushes.
    pub fn push(&mut self, time: u64, seq: u64, kind: K) {
        assert!(
            time >= self.horizon,
            "timing wheel push at t={time} behind horizon {}",
            self.horizon
        );
        let level = self.level_of(time);
        let idx = Self::slot_index(level, time);
        let slot = &mut self.slots[level * SLOTS + idx];
        slot.push_back(Entry { time, seq, kind });
        if slot.len() > self.slot_depth_hwm {
            self.slot_depth_hwm = slot.len();
        }
        self.occupied[level] |= 1 << idx;
        self.len += 1;
        if self.len > self.len_hwm {
            self.len_hwm = self.len;
        }
    }

    /// Pop the earliest `(time, seq)` entry whose time is ≤ `limit`, or
    /// `None` if the wheel is empty or the earliest entry is later.
    ///
    /// Never advances `horizon` beyond `limit`: before cascading a
    /// coarse-level slot the wheel checks the slot's base tick (a lower
    /// bound on everything inside it) against `limit`, so a `None` answer
    /// leaves the wheel positioned no later than `limit` and later pushes
    /// at ≥ `limit` remain valid. Note the contract is asymmetric: after
    /// `Some(e)` the position is exactly `e.time`, but after `None` the
    /// wheel may sit anywhere in `(old position, limit]` — callers must
    /// treat a bounded `None` as "time advanced to `limit`", which is
    /// precisely what `Simulator::run_until` does by setting `now = until`
    /// before accepting further pushes.
    pub fn pop_next(&mut self, limit: u64) -> Option<Entry<K>> {
        loop {
            // Lowest occupied level holds the earliest event (levels
            // partition future time in increasing ranges).
            let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let idx = self.occupied[level].trailing_zeros() as usize;
            let base = self.slot_base(level, idx);
            if base > limit {
                return None;
            }
            // `base` can sit at or before the horizon when the slot was
            // filed against an older horizon (the entry's true level has
            // since shrunk); never move backwards.
            if base > self.horizon {
                self.horizon = base;
            }
            if level == 0 {
                // A level-0 slot is one exact tick; FIFO order is seq
                // order (see module docs).
                let slot = &mut self.slots[idx];
                let e = slot.pop_front().expect("occupied bit on empty slot");
                if slot.is_empty() {
                    self.occupied[0] &= !(1 << idx);
                }
                self.len -= 1;
                return Some(e);
            }
            // Cascade: drain the coarse slot and refile its entries
            // against the advanced horizon. Each entry's level strictly
            // decreases, so an entry cascades at most LEVELS-1 times
            // over its lifetime. The drained buffer is handed back to
            // keep its capacity.
            self.occupied[level] &= !(1 << idx);
            let mut moved = std::mem::take(&mut self.slots[level * SLOTS + idx]);
            self.cascade_moves += moved.len() as u64;
            for e in moved.drain(..) {
                let l = self.level_of(e.time);
                debug_assert!(l < level, "cascade must strictly descend");
                let i = Self::slot_index(l, e.time);
                let slot = &mut self.slots[l * SLOTS + i];
                slot.push_back(e);
                if slot.len() > self.slot_depth_hwm {
                    self.slot_depth_hwm = slot.len();
                }
                self.occupied[l] |= 1 << i;
            }
            self.slots[level * SLOTS + idx] = moved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain everything; assert ascending (time, seq) and return the keys.
    fn drain_all(w: &mut TimingWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop_next(u64::MAX) {
            out.push((e.time, e.seq));
        }
        for win in out.windows(2) {
            assert!(win[0] < win[1], "pop order not ascending: {win:?}");
        }
        assert!(w.is_empty());
        out
    }

    #[test]
    fn pops_in_time_seq_order() {
        let mut w = TimingWheel::new();
        let times = [5u64, 1, 1, 700, 64, 63, 65, 5, 4096, 4095, 1 << 30];
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, 0);
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        expect.sort();
        assert_eq!(drain_all(&mut w), expect);
    }

    #[test]
    fn same_tick_burst_pops_in_seq_order() {
        let mut w = TimingWheel::new();
        for seq in 0..1000u64 {
            w.push(42, seq, 0);
        }
        let popped = drain_all(&mut w);
        assert_eq!(popped, (0..1000).map(|s| (42, s)).collect::<Vec<_>>());
    }

    #[test]
    fn multi_level_cascade_boundaries() {
        // Straddle every level boundary: one event just below and one just
        // above each 64^k edge, plus the extreme top of the tick range.
        let mut w = TimingWheel::new();
        let mut times = Vec::new();
        for level in 1..LEVELS {
            let edge = 1u64 << (SLOT_BITS as usize * level);
            times.push(edge - 1);
            times.push(edge);
            times.push(edge + 1);
        }
        times.push(u64::MAX);
        times.push(u64::MAX - 1);
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, 0);
        }
        let popped = drain_all(&mut w);
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        expect.sort();
        assert_eq!(popped, expect);
    }

    #[test]
    fn far_jump_then_refill_near_the_new_horizon() {
        // A long idle gap forces a top-down cascade chain; pushes issued
        // after the jump interleave correctly with events filed before it.
        let mut w = TimingWheel::new();
        let far = (1u64 << 40) + 12345;
        w.push(far, 0, 0);
        w.push(far + 3, 1, 0);
        let e = w.pop_next(u64::MAX).unwrap();
        assert_eq!((e.time, e.seq), (far, 0));
        // Horizon has advanced; same-tick and near-future pushes are live.
        w.push(far, 2, 0);
        w.push(far + 1, 3, 0);
        w.push(far + (1 << 20), 4, 0);
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop_next(u64::MAX))
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![(far, 2), (far + 1, 3), (far + 3, 1), (far + (1 << 20), 4)]
        );
    }

    #[test]
    fn pop_next_limit_is_exclusive_of_later_events() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 0);
        w.push(200_000, 1, 0); // level 2 relative to horizon 0
        assert!(w.pop_next(99).is_none());
        assert_eq!(w.pop_next(100).unwrap().time, 100);
        // The next event is far; a bounded pop must neither return it nor
        // advance the horizon beyond the bound.
        assert!(w.pop_next(150).is_none());
        assert!(w.horizon() <= 150);
        // A push between the bounded pop and the event must still be
        // accepted and ordered first.
        w.push(160, 2, 0);
        let order: Vec<u64> = std::iter::from_fn(|| w.pop_next(u64::MAX))
            .map(|e| e.time)
            .collect();
        assert_eq!(order, vec![160, 200_000]);
    }

    #[test]
    #[should_panic(expected = "behind horizon")]
    fn push_behind_horizon_panics() {
        let mut w = TimingWheel::new();
        w.push(1000, 0, 0u32);
        w.pop_next(u64::MAX);
        w.push(999, 1, 0);
    }

    #[test]
    fn health_counters_track_depth_and_cascades() {
        let mut w = TimingWheel::new();
        for seq in 0..5u64 {
            w.push(42, seq, 0u32);
        }
        assert_eq!(w.slot_depth_hwm(), 5);
        assert_eq!(w.len_hwm(), 5);
        assert_eq!(w.cascade_moves(), 0, "level-0 pops never cascade");
        drain_all(&mut w);
        // A far event files coarse and must cascade down once popped; each
        // level it descends counts one move.
        w.push((1 << 30) + 7, 10, 0);
        assert!(w.pop_next(u64::MAX).is_some());
        assert!(w.cascade_moves() >= 1);
        assert_eq!(w.slot_depth_hwm(), 5, "high-water marks are sticky");
    }

    #[test]
    fn len_tracks_push_and_pop() {
        let mut w = TimingWheel::new();
        assert!(w.is_empty());
        for i in 0..10 {
            w.push(i * 1000, i, 0u32);
        }
        assert_eq!(w.len(), 10);
        w.pop_next(u64::MAX);
        assert_eq!(w.len(), 9);
        drain_all(&mut w);
        assert_eq!(w.len(), 0);
    }
}
