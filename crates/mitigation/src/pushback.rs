//! Pushback (Mahajan et al., "Controlling High Bandwidth Aggregates in the
//! Network") — the reactive baseline of Sec. 3.1.
//!
//! Each participating router observes tail-drops on its links. When drops
//! in a window exceed a threshold, it "classifies dropped packets according
//! to source addresses" (the paper's description): the aggregate (a /16
//! source prefix here, one per origin AS) with the highest drop count is
//! rate-limited locally, and a pushback message is sent to the upstream
//! neighbours that contributed that aggregate's traffic, which install the
//! same limit and recurse — confining the attack toward its sources.
//!
//! Both weaknesses the paper calls out are reproduced faithfully:
//!
//! * aggregates keyed on *source* mis-identify the innocent reflectors in a
//!   reflector attack (experiment E9), and spread thin under randomly
//!   spoofed sources;
//! * propagation stops at routers that do not speak the protocol (deploy
//!   the agent on a subset to see this).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::{
    AgentCtx, ControlMsg, DropReason, LinkId, NodeAgent, NodeId, Packet, Prefix, SimDuration,
    Simulator, Verdict,
};

/// Which header field defines an aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKey {
    /// Source /16 (the description in the reproduced paper; weak against
    /// spoofing and reflectors).
    SrcPrefix,
    /// Destination /16 (ACC-style victim aggregates; ablation).
    DstPrefix,
}

/// Pushback parameters.
#[derive(Clone, Copy, Debug)]
pub struct PushbackConfig {
    /// Monitoring / decision window.
    pub window: SimDuration,
    /// Tail-drops per link per window that indicate sustained congestion.
    pub drop_threshold: u64,
    /// Rate limit applied to an identified aggregate, bytes/second.
    pub limit_bytes_per_sec: f64,
    /// Token bucket depth for the limit.
    pub burst_bytes: u32,
    /// Maximum upstream propagation depth.
    pub depth: u8,
    /// Consecutive calm windows before a limit is removed (third phase of
    /// reactive schemes: relief).
    pub relief_windows: u32,
    /// Aggregate definition.
    pub key: AggregateKey,
}

impl Default for PushbackConfig {
    fn default() -> Self {
        PushbackConfig {
            window: SimDuration::from_secs(1),
            drop_threshold: 50,
            limit_bytes_per_sec: 50_000.0,
            burst_bytes: 25_000,
            depth: 4,
            relief_windows: 3,
            key: AggregateKey::SrcPrefix,
        }
    }
}

/// Pushback protocol message (out-of-band control, per DESIGN.md §3).
#[derive(Clone, Copy, Debug)]
pub struct PushbackMsg {
    /// Aggregate to limit.
    pub prefix: Prefix,
    /// Requested rate, bytes/second.
    pub rate: f64,
    /// Remaining propagation depth.
    pub depth: u8,
}

/// Fleet-wide observability shared by every pushback agent in a scenario.
#[derive(Clone, Debug, Default)]
pub struct PushbackStats {
    /// `(node, aggregate prefix)` pairs where a limit was installed.
    pub limits_installed: Vec<(NodeId, Prefix)>,
    /// Pushback messages sent upstream.
    pub msgs_sent: u64,
    /// Packets dropped by rate limits, per aggregate prefix bits.
    pub dropped_per_aggregate: BTreeMap<u32, u64>,
    /// Limits removed after calm windows (relief phase).
    pub limits_relieved: u64,
}

/// Shared handle to fleet-wide pushback stats.
pub type PushbackHandle = Arc<Mutex<PushbackStats>>;

const WINDOW_TICK: u64 = 0xB0;

struct LimitState {
    tokens: f64,
    max_tokens: f64,
    last: dtcs_netsim::SimTime,
    rate: f64,
    calm_windows: u32,
    dropped_this_window: u64,
}

impl LimitState {
    fn new(rate: f64, burst: u32) -> LimitState {
        LimitState {
            tokens: burst as f64,
            max_tokens: burst as f64,
            last: dtcs_netsim::SimTime::ZERO,
            rate,
            calm_windows: 0,
            dropped_this_window: 0,
        }
    }

    fn take(&mut self, now: dtcs_netsim::SimTime, bytes: u32) -> bool {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.max_tokens);
            self.last = now;
        }
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            self.dropped_this_window += 1;
            false
        }
    }
}

/// One router's pushback logic.
pub struct PushbackAgent {
    node: NodeId,
    cfg: PushbackConfig,
    /// Tail-drops this window: (outgoing link, aggregate bits) → count.
    drops: BTreeMap<(LinkId, u32), u64>,
    /// Tail-drops this window per outgoing link.
    link_drops: BTreeMap<LinkId, u64>,
    /// Aggregate → (inbound link → packets) this window, for upstream
    /// attribution.
    contrib: BTreeMap<u32, BTreeMap<Option<LinkId>, u64>>,
    /// Previous window's contributions (used when a pushback message
    /// arrives right after a window flip).
    prev_contrib: BTreeMap<u32, BTreeMap<Option<LinkId>, u64>>,
    limits: BTreeMap<u32, LimitState>,
    timer_armed: bool,
    stats: PushbackHandle,
}

impl PushbackAgent {
    /// Agent for `node`, reporting into the shared `stats`.
    pub fn new(node: NodeId, cfg: PushbackConfig, stats: PushbackHandle) -> PushbackAgent {
        PushbackAgent {
            node,
            cfg,
            drops: BTreeMap::new(),
            link_drops: BTreeMap::new(),
            contrib: BTreeMap::new(),
            prev_contrib: BTreeMap::new(),
            limits: BTreeMap::new(),
            timer_armed: false,
            stats,
        }
    }

    fn aggregate_bits(&self, pkt: &Packet) -> u32 {
        let addr = match self.cfg.key {
            AggregateKey::SrcPrefix => pkt.src,
            AggregateKey::DstPrefix => pkt.dst,
        };
        addr.0 & 0xFFFF_0000
    }

    fn install_limit(&mut self, agg: u32, rate: f64) {
        if self.limits.contains_key(&agg) {
            return;
        }
        self.limits
            .insert(agg, LimitState::new(rate, self.cfg.burst_bytes));
        self.stats
            .lock()
            .limits_installed
            .push((self.node, Prefix::new(agg, 16)));
    }

    /// Send pushback requests to the upstream neighbours that contributed
    /// traffic of this aggregate.
    fn propagate(&mut self, ctx: &mut AgentCtx<'_>, agg: u32, rate: f64, depth: u8) {
        if depth == 0 {
            return;
        }
        let contributions = self
            .contrib
            .get(&agg)
            .or_else(|| self.prev_contrib.get(&agg))
            .cloned()
            .unwrap_or_default();
        let total: u64 = contributions.values().sum();
        if total == 0 {
            return;
        }
        for (in_link, count) in contributions {
            let Some(link) = in_link else { continue };
            // Only push toward neighbours carrying a meaningful share.
            if count * 10 < total {
                continue;
            }
            let peer = ctx.topo.links[link.0].other(self.node);
            let latency = ctx.topo.links[link.0].latency;
            ctx.send_control(
                peer,
                latency,
                PushbackMsg {
                    prefix: Prefix::new(agg, 16),
                    rate,
                    depth: depth - 1,
                },
            );
            self.stats.lock().msgs_sent += 1;
        }
    }

    fn end_window(&mut self, ctx: &mut AgentCtx<'_>) {
        // Detection: links with sustained drops; limit their hottest
        // source aggregate.
        let hot_links: Vec<LinkId> = self
            .link_drops
            .iter()
            .filter(|&(_, &d)| d >= self.cfg.drop_threshold)
            .map(|(&l, _)| l)
            .collect();
        for link in hot_links {
            let top = self
                .drops
                .iter()
                .filter(|((l, _), _)| *l == link)
                .max_by_key(|((_, agg), &count)| (count, std::cmp::Reverse(*agg)))
                .map(|((_, agg), _)| *agg);
            if let Some(agg) = top {
                self.install_limit(agg, self.cfg.limit_bytes_per_sec);
                self.propagate(ctx, agg, self.cfg.limit_bytes_per_sec, self.cfg.depth);
            }
        }
        // Relief: drop limits that stayed calm.
        let relief = self.cfg.relief_windows;
        let mut removed = 0u64;
        self.limits.retain(|_, st| {
            if st.dropped_this_window == 0 {
                st.calm_windows += 1;
            } else {
                st.calm_windows = 0;
            }
            st.dropped_this_window = 0;
            let keep = st.calm_windows < relief;
            if !keep {
                removed += 1;
            }
            keep
        });
        if removed > 0 {
            self.stats.lock().limits_relieved += removed;
        }
        self.prev_contrib = std::mem::take(&mut self.contrib);
        self.drops.clear();
        self.link_drops.clear();
    }
}

impl NodeAgent for PushbackAgent {
    fn name(&self) -> &'static str {
        "pushback"
    }

    fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        from: Option<LinkId>,
    ) -> Verdict {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.cfg.window, WINDOW_TICK);
        }
        let agg = self.aggregate_bits(pkt);
        *self
            .contrib
            .entry(agg)
            .or_default()
            .entry(from)
            .or_insert(0) += 1;
        if let Some(limit) = self.limits.get_mut(&agg) {
            if !limit.take(ctx.now, pkt.size) {
                *self
                    .stats
                    .lock()
                    .dropped_per_aggregate
                    .entry(agg)
                    .or_insert(0) += 1;
                return Verdict::Drop(DropReason::PushbackLimit);
            }
        }
        Verdict::Forward
    }

    fn on_link_drop(&mut self, _ctx: &mut AgentCtx<'_>, link: LinkId, pkt: &Packet) {
        let agg = self.aggregate_bits(pkt);
        *self.drops.entry((link, agg)).or_insert(0) += 1;
        *self.link_drops.entry(link).or_insert(0) += 1;
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        if token != WINDOW_TICK {
            return;
        }
        self.end_window(ctx);
        ctx.set_timer(self.cfg.window, WINDOW_TICK);
    }

    fn on_control(&mut self, ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
        let Some(req) = msg.get::<PushbackMsg>() else {
            return;
        };
        let agg = req.prefix.bits;
        let fresh = !self.limits.contains_key(&agg);
        self.install_limit(agg, req.rate);
        if fresh {
            self.propagate(ctx, agg, req.rate, req.depth);
        }
    }
}

/// Install pushback on every node of the simulator (full deployment) and
/// return the shared stats handle.
pub fn deploy_pushback_everywhere(sim: &mut Simulator, cfg: PushbackConfig) -> PushbackHandle {
    let stats: PushbackHandle = Arc::new(Mutex::new(PushbackStats::default()));
    for i in 0..sim.topo.n() {
        sim.add_agent(
            NodeId(i),
            Box::new(PushbackAgent::new(NodeId(i), cfg, stats.clone())),
        );
    }
    stats
}

/// Install pushback on a subset of nodes (partial deployment: propagation
/// stops at non-speaking routers, Sec. 3.1).
pub fn deploy_pushback_on(
    sim: &mut Simulator,
    nodes: &[NodeId],
    cfg: PushbackConfig,
) -> PushbackHandle {
    let stats: PushbackHandle = Arc::new(Mutex::new(PushbackStats::default()));
    for &n in nodes {
        sim.add_agent(n, Box::new(PushbackAgent::new(n, cfg, stats.clone())));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, LinkProfile, PacketBuilder, Proto, SimTime, Topology, TrafficClass};

    /// Dumbbell with a skinny bottleneck; flood from left leaves to the
    /// right service until pushback engages.
    fn flooded_dumbbell(cfg: PushbackConfig) -> (dtcs_netsim::Simulator, PushbackHandle, Addr) {
        // 1 Mbit/s bottleneck.
        let skinny = LinkProfile {
            bandwidth_bps: 1e6,
            latency: dtcs_netsim::SimDuration::from_millis(5),
            queue_limit_bytes: 20_000,
        };
        let topo = Topology::dumbbell(3, 1, skinny);
        let mut sim = dtcs_netsim::Simulator::new(topo, 3);
        let stats = deploy_pushback_everywhere(&mut sim, cfg);
        let victim = Addr::new(NodeId(3 + 2), 1); // first right-side stub
        sim.install_app(victim, Box::new(dtcs_netsim::SinkApp));
        // Flood: left stubs (nodes 2,3,4) each blast 1000-byte packets at
        // 500 pps for 10 s; bottleneck fits ~125 pps total.
        for (i, src_node) in [2usize, 3, 4].iter().enumerate() {
            let src_node = NodeId(*src_node);
            for k in 0..5000u64 {
                let at = SimTime(k * 2_000_000 + i as u64 * 700_000);
                sim.schedule(at, move |s| {
                    s.emit_now(
                        src_node,
                        PacketBuilder::new(
                            Addr::new(src_node, 3),
                            victim,
                            Proto::Udp,
                            TrafficClass::AttackDirect,
                        )
                        .size(1000)
                        .flow(k),
                    );
                });
            }
        }
        (sim, stats, victim)
    }

    #[test]
    fn pushback_engages_under_congestion() {
        let (mut sim, stats, _victim) = flooded_dumbbell(PushbackConfig::default());
        sim.run_until(SimTime::from_secs(10));
        let s = stats.lock();
        assert!(
            !s.limits_installed.is_empty(),
            "sustained congestion must trigger pushback"
        );
        assert!(s.msgs_sent > 0, "limits must be pushed upstream");
        drop(s);
        assert!(
            sim.stats.drops_for_reason(DropReason::PushbackLimit).pkts > 0,
            "rate limits must actually drop traffic"
        );
    }

    #[test]
    fn pushback_moves_drops_upstream() {
        let (mut sim, stats, _victim) = flooded_dumbbell(PushbackConfig::default());
        sim.run_until(SimTime::from_secs(10));
        // At least one limit sits on a node other than the bottleneck
        // heads (0/1): it reached the source-side stubs.
        let s = stats.lock();
        let upstream = s.limits_installed.iter().filter(|(n, _)| n.0 >= 2).count();
        assert!(upstream > 0, "limits: {:?}", s.limits_installed);
    }

    #[test]
    fn relief_removes_limits_after_attack() {
        let cfg = PushbackConfig {
            relief_windows: 2,
            ..Default::default()
        };
        let (mut sim, stats, _victim) = flooded_dumbbell(cfg);
        // Attack traffic ends at ~10 s; run long past it.
        sim.run_until(SimTime::from_secs(30));
        let s = stats.lock();
        assert!(s.limits_relieved > 0, "limits must be relieved after calm");
    }

    #[test]
    fn quiet_network_triggers_nothing() {
        let topo = Topology::line(4);
        let mut sim = dtcs_netsim::Simulator::new(topo, 3);
        let stats = deploy_pushback_everywhere(&mut sim, PushbackConfig::default());
        let dst = Addr::new(NodeId(3), 1);
        sim.install_app(dst, Box::new(dtcs_netsim::SinkApp));
        for k in 0..100u64 {
            let at = SimTime(k * 10_000_000);
            sim.schedule(at, move |s| {
                s.emit_now(
                    NodeId(0),
                    PacketBuilder::new(
                        Addr::new(NodeId(0), 1),
                        dst,
                        Proto::TcpData,
                        TrafficClass::LegitRequest,
                    )
                    .size(200),
                );
            });
        }
        sim.run_until(SimTime::from_secs(5));
        assert!(stats.lock().limits_installed.is_empty());
        assert_eq!(
            sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
            100
        );
    }
}
