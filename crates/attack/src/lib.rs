//! # dtcs-attack — DDoS workload generation
//!
//! Implements the attack side of the reproduced paper (Sec. 2): the
//! amplifying attacker → master → agent hierarchy, DDoS **reflector
//! attacks** that bounce spoofed requests off innocent servers (Fig. 1),
//! direct floods with configurable source spoofing, protocol-misuse (forged
//! RST) attacks, SI-epidemic botnet recruitment, and the legitimate
//! client/server workload against which service degradation and collateral
//! damage are measured.
//!
//! ```
//! use dtcs_attack::{ReflectorAttack, ReflectorAttackConfig};
//! use dtcs_netsim::{SimTime, Simulator, Topology, TrafficClass};
//!
//! let mut sim = Simulator::new(Topology::barabasi_albert(80, 2, 0.1, 7), 7);
//! let victim_node = sim.topo.stub_nodes()[0];
//! let attack = ReflectorAttack::install(&mut sim, victim_node, &ReflectorAttackConfig {
//!     n_agents: 10,
//!     n_reflectors: 20,
//!     start_at: SimTime::from_secs(1),
//!     stop_at: SimTime::from_secs(3),
//!     ..Default::default()
//! });
//! sim.run_until(SimTime::from_secs(4));
//! // The victim is flooded by unspoofed reflector replies.
//! assert!(attack.victim_stats.lock().received > 0);
//! assert!(sim.stats.class(TrafficClass::AttackReflected).sent_pkts > 0);
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod botnet;
pub mod misuse;
pub mod reflector;
pub mod scenario;
pub mod victim;

pub use agent::{
    AgentApp, AgentMode, AgentTrigger, AttackerApp, MasterApp, SpoofMode, CMD_START, CMD_STOP,
};
pub use botnet::SiModel;
pub use misuse::{ConnClientApp, ConnHandle, ConnServerApp, ConnStats};
pub use reflector::{ReflectorApp, ReflectorHandle, ReflectorProfile, ReflectorStats};
pub use scenario::{
    hosts, install_clients, install_clients_at, mean_success, plan_client_addrs, DirectFlood,
    DirectFloodConfig, ReflectorAttack, ReflectorAttackConfig,
};
pub use victim::{ClientApp, ClientHandle, ClientStats, VictimApp, VictimHandle, VictimStats};
