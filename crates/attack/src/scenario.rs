//! Attack scenario installers: wire a whole Fig. 1 structure (attacker →
//! masters → agents → reflectors → victim) plus legitimate workload into a
//! simulator and hand back the ground-truth roster and all measurement
//! handles.

use rand::seq::SliceRandom;
use rand::Rng;

use dtcs_netsim::rng::{child_seed, seeded};
use dtcs_netsim::{Addr, NodeId, Proto, SimDuration, SimTime, Simulator};

use crate::agent::{AgentApp, AgentMode, AgentTrigger, AttackerApp, MasterApp, SpoofMode};
use crate::botnet::SiModel;
use crate::reflector::{ReflectorApp, ReflectorHandle, ReflectorProfile};
use crate::victim::{ClientApp, ClientHandle, VictimApp, VictimHandle};

/// Host index conventions inside a node (one node = one AS/site).
pub mod hosts {
    /// Well-known service host (victim server, reflector service).
    pub const SERVICE: u16 = 1;
    /// Legitimate client host.
    pub const CLIENT: u16 = 2;
    /// Compromised (agent/master/attacker) host.
    pub const ZOMBIE: u16 = 3;
}

/// Parameters of a full reflector attack (Fig. 1).
#[derive(Clone, Debug)]
pub struct ReflectorAttackConfig {
    /// Master tier size.
    pub n_masters: usize,
    /// Agent (zombie) population.
    pub n_agents: usize,
    /// Reflector pool size.
    pub n_reflectors: usize,
    /// Per-agent attack rate, packets/second.
    pub agent_rate_pps: f64,
    /// Spoofed request size.
    pub request_size: u32,
    /// Request protocol bounced off reflectors.
    pub proto: Proto,
    /// Attacker issues the start command at this time.
    pub start_at: SimTime,
    /// Attack stops at this time.
    pub stop_at: SimTime,
    /// Reflector service behaviour.
    pub profile: ReflectorProfile,
    /// Victim processing capacity, packets/second.
    pub victim_capacity_pps: f64,
    /// Use SI-model recruitment (agents trickle in) instead of
    /// command-and-control start.
    pub si_recruitment: Option<SiModel>,
    /// Override the address the attack aims at (spoofed source /
    /// reflected destination). Defaults to the victim service address.
    pub target_override: Option<Addr>,
    /// Install a default [`VictimApp`] at the victim address. Set false
    /// when the scenario installs its own (e.g. an i3-restricted victim).
    pub install_victim: bool,
    /// Placement / jitter seed.
    pub seed: u64,
}

impl Default for ReflectorAttackConfig {
    fn default() -> Self {
        ReflectorAttackConfig {
            n_masters: 3,
            n_agents: 100,
            n_reflectors: 200,
            agent_rate_pps: 100.0,
            request_size: 60,
            proto: Proto::TcpSyn,
            start_at: SimTime::from_secs(5),
            stop_at: SimTime::from_secs(25),
            profile: ReflectorProfile::default(),
            victim_capacity_pps: 2000.0,
            si_recruitment: None,
            target_override: None,
            install_victim: true,
            seed: 42,
        }
    }
}

/// Ground truth of an installed reflector attack.
pub struct ReflectorAttack {
    /// The attacked server.
    pub victim: Addr,
    /// Node hosting the victim.
    pub victim_node: NodeId,
    /// Attacker host.
    pub attacker: Addr,
    /// Master hosts.
    pub masters: Vec<Addr>,
    /// Agent hosts.
    pub agents: Vec<Addr>,
    /// Nodes hosting agents (for deployment-targeting experiments).
    pub agent_nodes: Vec<NodeId>,
    /// Reflector service addresses.
    pub reflectors: Vec<Addr>,
    /// Nodes hosting reflectors.
    pub reflector_nodes: Vec<NodeId>,
    /// Victim counters.
    pub victim_stats: VictimHandle,
    /// Per-reflector counters.
    pub reflector_stats: Vec<ReflectorHandle>,
}

impl ReflectorAttack {
    /// Install the attack into `sim` with the victim at `victim_node`.
    ///
    /// Agents, masters, the attacker and reflectors are placed on distinct
    /// random stub nodes (multiple per node via host indices when the pool
    /// is larger than the stub set), mirroring the paper's "poorly managed
    /// access networks where infected or compromised machines are hooked
    /// up" (Sec. 4.6).
    pub fn install(
        sim: &mut Simulator,
        victim_node: NodeId,
        cfg: &ReflectorAttackConfig,
    ) -> ReflectorAttack {
        let mut rng = seeded(child_seed(cfg.seed, 0x4E7));
        let mut stubs: Vec<NodeId> = sim
            .topo
            .stub_nodes()
            .into_iter()
            .filter(|&n| n != victim_node)
            .collect();
        if stubs.is_empty() {
            stubs = (0..sim.topo.n())
                .map(NodeId)
                .filter(|&n| n != victim_node)
                .collect();
        }
        stubs.shuffle(&mut rng);
        assert!(!stubs.is_empty(), "topology too small for an attack");

        let pick = |rng: &mut rand_chacha::ChaCha8Rng,
                    stubs: &[NodeId],
                    count: usize,
                    host_base: u16|
         -> (Vec<Addr>, Vec<NodeId>) {
            let mut addrs = Vec::with_capacity(count);
            let mut nodes = Vec::with_capacity(count);
            for i in 0..count {
                let node = if i < stubs.len() {
                    stubs[i]
                } else {
                    stubs[rng.gen_range(0..stubs.len())]
                };
                let host = host_base + (i / stubs.len()) as u16;
                addrs.push(Addr::new(node, host));
                nodes.push(node);
            }
            (addrs, nodes)
        };

        // Victim (the address the attack aims at).
        let victim = cfg
            .target_override
            .unwrap_or(Addr::new(victim_node, hosts::SERVICE));
        let (vapp, victim_stats) = VictimApp::new(cfg.victim_capacity_pps, 600);
        if cfg.install_victim {
            sim.install_app(victim, Box::new(vapp));
        }

        // Reflectors: draw from the back of the shuffled stub list so they
        // do not systematically collide with agents.
        let mut refl_pool = stubs.clone();
        refl_pool.reverse();
        let (reflectors, reflector_nodes) =
            pick(&mut rng, &refl_pool, cfg.n_reflectors, hosts::SERVICE);
        let mut reflector_stats = Vec::with_capacity(reflectors.len());
        for &r in &reflectors {
            let (app, h) = ReflectorApp::new(cfg.profile);
            sim.install_app(r, Box::new(app));
            reflector_stats.push(h);
        }

        // Agents.
        let (agents, agent_nodes) = pick(&mut rng, &stubs, cfg.n_agents, hosts::ZOMBIE + 1);
        let activation_times: Option<Vec<SimTime>> = cfg.si_recruitment.map(|m| {
            m.activation_times(cfg.n_agents)
                .into_iter()
                .map(|t| SimTime(cfg.start_at.as_nanos().saturating_add(t.as_nanos())))
                .collect()
        });
        for (i, &a) in agents.iter().enumerate() {
            let trigger = match &activation_times {
                Some(times) => AgentTrigger::AtTime(times[i.min(times.len() - 1)]),
                None => AgentTrigger::OnCommand,
            };
            let app = AgentApp::new(
                AgentMode::Reflector {
                    victim,
                    reflectors: reflectors.clone(),
                    proto: cfg.proto,
                },
                trigger,
                cfg.agent_rate_pps,
                cfg.request_size,
            )
            .until(cfg.stop_at);
            sim.install_app(a, Box::new(app));
        }

        // Masters + attacker (only used for command-and-control starts).
        let (masters, _) = pick(&mut rng, &stubs, cfg.n_masters, hosts::ZOMBIE);
        let per_master = agents.len().div_ceil(cfg.n_masters.max(1));
        for (mi, &m) in masters.iter().enumerate() {
            let group: Vec<Addr> = agents
                .iter()
                .copied()
                .skip(mi * per_master)
                .take(per_master)
                .collect();
            sim.install_app(m, Box::new(MasterApp { agents: group }));
        }
        let attacker_node = stubs[stubs.len() - 1];
        let attacker = Addr::new(attacker_node, hosts::ZOMBIE + 99);
        sim.install_app(
            attacker,
            Box::new(AttackerApp {
                masters: masters.clone(),
                start_at: cfg.start_at,
                stop_at: cfg.stop_at,
            }),
        );

        ReflectorAttack {
            victim,
            victim_node,
            attacker,
            masters,
            agents,
            agent_nodes,
            reflectors,
            reflector_nodes,
            victim_stats,
            reflector_stats,
        }
    }

    /// Total requests seen / attack requests seen across all reflectors.
    pub fn reflector_totals(&self) -> (u64, u64) {
        let mut requests = 0;
        let mut attack = 0;
        for h in &self.reflector_stats {
            let s = h.lock();
            requests += s.requests;
            attack += s.attack_requests;
        }
        (requests, attack)
    }
}

/// Parameters for a direct (non-reflector) flood.
#[derive(Clone, Debug)]
pub struct DirectFloodConfig {
    /// Agent count.
    pub n_agents: usize,
    /// Per-agent rate, packets/second.
    pub agent_rate_pps: f64,
    /// Packet size.
    pub pkt_size: u32,
    /// Source forging policy.
    pub spoof: SpoofMode,
    /// Flood start.
    pub start_at: SimTime,
    /// Flood end.
    pub stop_at: SimTime,
    /// Placement seed.
    pub seed: u64,
}

impl Default for DirectFloodConfig {
    fn default() -> Self {
        DirectFloodConfig {
            n_agents: 50,
            agent_rate_pps: 200.0,
            pkt_size: 400,
            spoof: SpoofMode::Random,
            start_at: SimTime::from_secs(5),
            stop_at: SimTime::from_secs(20),
            seed: 7,
        }
    }
}

/// Ground truth of an installed direct flood.
pub struct DirectFlood {
    /// Target address.
    pub victim: Addr,
    /// Agent hosts.
    pub agents: Vec<Addr>,
    /// Nodes hosting agents.
    pub agent_nodes: Vec<NodeId>,
}

impl DirectFlood {
    /// Install a direct flood against `victim` (which must already have an
    /// app installed, e.g. a [`VictimApp`]).
    pub fn install(sim: &mut Simulator, victim: Addr, cfg: &DirectFloodConfig) -> DirectFlood {
        let mut rng = seeded(child_seed(cfg.seed, 0xF10));
        let mut stubs: Vec<NodeId> = sim
            .topo
            .stub_nodes()
            .into_iter()
            .filter(|&n| n != victim.node())
            .collect();
        stubs.shuffle(&mut rng);
        assert!(!stubs.is_empty());
        let mut agents = Vec::with_capacity(cfg.n_agents);
        let mut agent_nodes = Vec::with_capacity(cfg.n_agents);
        for i in 0..cfg.n_agents {
            let node = stubs[i % stubs.len()];
            let host = hosts::ZOMBIE + 1 + (i / stubs.len()) as u16;
            let addr = Addr::new(node, host);
            let app = AgentApp::new(
                AgentMode::Direct {
                    victim,
                    spoof: cfg.spoof,
                },
                AgentTrigger::AtTime(cfg.start_at),
                cfg.agent_rate_pps,
                cfg.pkt_size,
            )
            .until(cfg.stop_at);
            sim.install_app(addr, Box::new(app));
            agents.push(addr);
            agent_nodes.push(node);
        }
        DirectFlood {
            victim,
            agents,
            agent_nodes,
        }
    }
}

/// Plan deterministic client placements on random stub nodes (excluding
/// `exclude`), without installing anything. Lets schemes that need the
/// client roster up front (SOS authorisation lists) see it before the
/// apps exist.
pub fn plan_client_addrs(sim: &Simulator, exclude: NodeId, n: usize, seed: u64) -> Vec<Addr> {
    let mut rng = seeded(child_seed(seed, 0xC11));
    let mut stubs: Vec<NodeId> = sim
        .topo
        .stub_nodes()
        .into_iter()
        .filter(|&nd| nd != exclude)
        .collect();
    stubs.shuffle(&mut rng);
    assert!(!stubs.is_empty());
    (0..n)
        .map(|i| {
            let node = stubs[i % stubs.len()];
            let host = hosts::CLIENT + (i / stubs.len()) as u16;
            Addr::new(node, host)
        })
        .collect()
}

/// Install clients at pre-planned addresses, all targeting `server`.
pub fn install_clients_at(
    sim: &mut Simulator,
    addrs: &[Addr],
    server: Addr,
    period: SimDuration,
    stop_at: SimTime,
) -> Vec<ClientHandle> {
    addrs
        .iter()
        .map(|&a| {
            let (app, h) = ClientApp::new(server, period);
            sim.install_app(a, Box::new(app.until(stop_at)));
            h
        })
        .collect()
}

/// Install `n` legitimate clients of `server` on random stub nodes.
pub fn install_clients(
    sim: &mut Simulator,
    server: Addr,
    n: usize,
    period: SimDuration,
    stop_at: SimTime,
    seed: u64,
) -> Vec<ClientHandle> {
    let addrs = plan_client_addrs(sim, server.node(), n, seed);
    install_clients_at(sim, &addrs, server, period, stop_at)
}

/// Mean success ratio across a set of client handles.
pub fn mean_success(handles: &[ClientHandle]) -> f64 {
    if handles.is_empty() {
        return 1.0;
    }
    handles
        .iter()
        .map(|h| h.lock().success_ratio())
        .sum::<f64>()
        / handles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Topology, TrafficClass};

    fn topo() -> Topology {
        Topology::barabasi_albert(120, 2, 0.1, 11)
    }

    #[test]
    fn reflector_attack_floods_victim_with_reflected_traffic() {
        let mut sim = Simulator::new(topo(), 5);
        let victim_node = sim.topo.stub_nodes()[0];
        let cfg = ReflectorAttackConfig {
            n_agents: 30,
            n_reflectors: 50,
            agent_rate_pps: 50.0,
            start_at: SimTime::from_secs(1),
            stop_at: SimTime::from_secs(4),
            ..Default::default()
        };
        let attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
        sim.run_until(SimTime::from_secs(5));
        let (reqs, attack_reqs) = attack.reflector_totals();
        assert!(reqs > 1000, "reflectors saw {reqs} requests");
        assert_eq!(reqs, attack_reqs, "all requests here are attack");
        // Victim receives *reflected* traffic, from unspoofed reflector
        // sources.
        let refl = sim.stats.class(TrafficClass::AttackReflected);
        assert!(refl.delivered_pkts + refl.dropped_pkts > 1000);
        let v = attack.victim_stats.lock();
        assert!(v.received > 500, "victim received {}", v.received);
    }

    #[test]
    fn reflector_attack_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new(topo(), 5);
            let victim_node = sim.topo.stub_nodes()[0];
            let cfg = ReflectorAttackConfig {
                n_agents: 10,
                n_reflectors: 20,
                agent_rate_pps: 20.0,
                start_at: SimTime::from_secs(1),
                stop_at: SimTime::from_secs(3),
                ..Default::default()
            };
            let attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
            sim.run_until(SimTime::from_secs(4));
            (
                attack.reflector_totals(),
                sim.stats.class(TrafficClass::AttackReflected).sent_pkts,
                sim.stats.events,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn si_recruitment_ramps_attack() {
        let mut sim = Simulator::new(topo(), 5);
        let victim_node = sim.topo.stub_nodes()[0];
        let cfg = ReflectorAttackConfig {
            n_agents: 40,
            n_reflectors: 40,
            agent_rate_pps: 20.0,
            start_at: SimTime::from_secs(0),
            stop_at: SimTime::from_secs(12),
            si_recruitment: Some(SiModel {
                susceptible: 40,
                seed: 2,
                beta: 0.6,
                dt: SimDuration::from_millis(100),
            }),
            ..Default::default()
        };
        sim.stats.watch(victim_node, SimDuration::from_secs(1));
        let _attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
        sim.run_until(SimTime::from_secs(12));
        let series = sim.stats.series.as_ref().unwrap();
        let idx = dtcs_netsim::stats::class_index(TrafficClass::AttackReflected);
        let early: u64 = series.delivered_bytes.iter().take(3).map(|b| b[idx]).sum();
        let late: u64 = series
            .delivered_bytes
            .iter()
            .skip(8)
            .take(3)
            .map(|b| b[idx])
            .sum();
        assert!(
            late > early * 2,
            "attack must ramp with recruitment: early={early} late={late}"
        );
    }

    #[test]
    fn command_and_control_stop_halts_agents() {
        // The attacker's CMD_STOP propagates attacker -> masters -> agents
        // (Fig. 1's control chain) and the flood actually ceases.
        let mut sim = Simulator::new(topo(), 5);
        let victim_node = sim.topo.stub_nodes()[0];
        let cfg = ReflectorAttackConfig {
            n_agents: 20,
            n_reflectors: 30,
            agent_rate_pps: 50.0,
            start_at: SimTime::from_secs(1),
            stop_at: SimTime::from_secs(3), // attacker sends CMD_STOP here
            ..Default::default()
        };
        let _attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
        sim.run_until(SimTime::from_secs(3));
        let sent_at_stop = sim.stats.class(TrafficClass::AttackDirect).sent_pkts;
        assert!(sent_at_stop > 500, "attack ran: {sent_at_stop}");
        sim.run_until(SimTime::from_secs(8));
        let sent_final = sim.stats.class(TrafficClass::AttackDirect).sent_pkts;
        // Agents also honour their own stop_at deadline; the C&C stop means
        // at most a few in-flight emissions trail past it.
        assert!(
            sent_final <= sent_at_stop + cfg.n_agents as u64 * 2,
            "flood must cease after CMD_STOP: {sent_at_stop} -> {sent_final}"
        );
    }

    #[test]
    fn direct_flood_with_random_spoofing() {
        let mut sim = Simulator::new(topo(), 5);
        let victim_node = sim.topo.stub_nodes()[1];
        let victim = Addr::new(victim_node, hosts::SERVICE);
        let (vapp, vstats) = VictimApp::new(10_000.0, 600);
        sim.install_app(victim, Box::new(vapp));
        let cfg = DirectFloodConfig {
            n_agents: 20,
            agent_rate_pps: 50.0,
            start_at: SimTime::from_secs(0),
            stop_at: SimTime::from_secs(3),
            ..Default::default()
        };
        let _flood = DirectFlood::install(&mut sim, victim, &cfg);
        sim.run_until(SimTime::from_secs(4));
        assert!(vstats.lock().received > 500);
        // Random spoofing means most attack packets' claimed sources
        // differ from their true origin.
        let sent = sim.stats.class(TrafficClass::AttackDirect).sent_pkts;
        assert!(sent > 1000);
    }

    #[test]
    fn clients_degrade_under_attack_and_recover() {
        let mut sim = Simulator::new(topo(), 9);
        let victim_node = sim.topo.stub_nodes()[2];
        let cfg = ReflectorAttackConfig {
            n_agents: 60,
            n_reflectors: 60,
            agent_rate_pps: 100.0,
            victim_capacity_pps: 300.0,
            start_at: SimTime::from_secs(2),
            stop_at: SimTime::from_secs(8),
            ..Default::default()
        };
        let attack = ReflectorAttack::install(&mut sim, victim_node, &cfg);
        let clients = install_clients(
            &mut sim,
            attack.victim,
            20,
            SimDuration::from_millis(200),
            SimTime::from_secs(10),
            1,
        );
        sim.run_until(SimTime::from_secs(10));
        let ratio = mean_success(&clients);
        assert!(
            ratio < 0.9,
            "attack should degrade client success: {ratio:.3}"
        );
    }
}
