//! E7 — Control-plane latency (Figs. 4 & 5 / Sec. 5.1).
//!
//! Measures the end-to-end time of the paper's two sequences —
//! registration (user → TCSP → number authority → back) and scoped
//! worldwide deployment (user → TCSP → per-ISP NMS → devices → acks) — as
//! the number of contracted ISPs grows, plus the direct-ISP fallback when
//! the TCSP is itself under DDoS. The "single registration instead of a
//! separate one with each ISP" argument is rendered as the contrast with
//! per-ISP manual provisioning (modelled at 30 simulated minutes of
//! operator handling per ISP, sequential — generous for 2005-era NOCs).

use rayon::prelude::*;
use serde::Serialize;

use dtcs::control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserId,
};
use dtcs::netsim::{Prefix, SimTime, Simulator, Topology};

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct Row {
    isps: usize,
    nodes: usize,
    registration_ms: f64,
    deployment_ms: f64,
    devices: usize,
    manual_estimate_hours: f64,
    fallback_used: bool,
}

/// Base seed shared by the single-run tables and the sweep cells
/// (historically the literal `77` for both topology and simulator).
const SEED: u64 = 77;

/// ISP-count axis shared by `run()` and the sweep adapter.
fn isp_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 5, 10]
    } else {
        vec![2, 5, 10, 20, 50]
    }
}

fn one(n_isps: usize, stubs_per: usize, outage: bool, seed: u64) -> (Row, dtcs::netsim::Stats) {
    let topo = Topology::transit_stub_multihomed(n_isps, stubs_per, 0.15, seed);
    let n_nodes = topo.n();
    let mut sim = Simulator::new(topo, seed);
    let victim_node = sim.topo.stub_nodes()[0];
    let prefix = Prefix::of_node(victim_node);
    let mut authority = InternetNumberAuthority::new();
    authority.allocate(prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[n_isps.min(2) - 1];
    let mut cp = ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
    let register_at = SimTime::from_millis(100);
    let (_user, record) = cp.add_user_with(
        &mut sim,
        victim_node,
        vec![prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        register_at,
        true,
        |a| {
            if outage {
                a.with_deploy_delay(dtcs::netsim::SimDuration::from_secs(1))
            } else {
                a
            }
        },
    );
    if outage {
        let switch = cp.tcsp_available.clone();
        sim.schedule(SimTime::from_millis(500), move |_| {
            *switch.lock() = false;
        });
    }
    sim.run_until(SimTime::from_secs(30));
    crate::util::enforce_run_invariants("e7", &sim.stats);
    let r = record.lock();
    let reg = r
        .registered_at
        .map(|t| (t.as_nanos() - register_at.as_nanos()) as f64 / 1e6)
        .unwrap_or(f64::NAN);
    let deploy_start_nanos = r
        .registered_at
        .map(|t| t.as_nanos() + if outage { 1_000_000_000 } else { 0 })
        .unwrap_or(0);
    let dep = r
        .deploy_confirmed_at
        .map(|t| (t.as_nanos().saturating_sub(deploy_start_nanos)) as f64 / 1e6)
        .unwrap_or(f64::NAN);
    let row = Row {
        isps: n_isps,
        nodes: n_nodes,
        registration_ms: reg,
        deployment_ms: dep,
        devices: r.devices_configured,
        manual_estimate_hours: n_isps as f64 * 0.5,
        fallback_used: r.used_fallback,
    };
    drop(r);
    (row, sim.stats)
}

/// Sweep-grid adapter: one cell per (ISP count, control path). The
/// latency fields are simulated times, hence deterministic; they are
/// skipped only when the sequence never completed (NaN).
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let mut cells = Vec::new();
        for k in isp_counts(opts.quick) {
            for (path, outage) in [("tcsp", false), ("fallback", true)] {
                cells.push(crate::sweep::SweepCell {
                    experiment: "e7",
                    scenario: format!("isps={k}/path={path}"),
                    base_seed: SEED,
                    run: Box::new(move |seed| {
                        let (row, stats) = one(k, 10, outage, seed);
                        let mut metrics = std::collections::BTreeMap::new();
                        if row.registration_ms.is_finite() {
                            metrics.insert("registration_ms".to_string(), row.registration_ms);
                        }
                        if row.deployment_ms.is_finite() {
                            metrics.insert("deployment_ms".to_string(), row.deployment_ms);
                        }
                        metrics.insert("devices".to_string(), row.devices as f64);
                        metrics
                            .insert("fallback_used".to_string(), row.fallback_used as u64 as f64);
                        crate::sweep::CellRun { metrics, stats }
                    }),
                });
            }
        }
        cells
    }
}

/// Run E7.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e7",
        "Control-plane latency: registration + worldwide deployment",
        "Figs. 4-5 / Sec. 5.1",
    );
    let isp_counts = isp_counts(quick);
    let rows: Vec<Row> = isp_counts
        .par_iter()
        .map(|&k| one(k, 10, false, SEED).0)
        .collect();
    let mut t = Table::new(
        "TCSP path: one registration, scoped fan-out",
        &[
            "isps",
            "nodes",
            "register_ms",
            "deploy_ms",
            "devices",
            "manual_est_hours",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.isps.to_string(),
                r.nodes.to_string(),
                f(r.registration_ms),
                f(r.deployment_ms),
                r.devices.to_string(),
                f(r.manual_estimate_hours),
            ],
            r,
        );
    }
    report.table(t);

    // Fallback path under TCSP outage.
    let rows: Vec<Row> = isp_counts
        .par_iter()
        .map(|&k| one(k, 10, true, SEED).0)
        .collect();
    let mut t = Table::new(
        "direct-ISP fallback (TCSP under DDoS; 5 s user timeout included)",
        &["isps", "deploy_ms", "devices", "fallback_used"],
    );
    for r in &rows {
        t.push(
            vec![
                r.isps.to_string(),
                f(r.deployment_ms),
                r.devices.to_string(),
                r.fallback_used.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Deployment latency stays within tens of milliseconds of control-plane RTTs even at \
         50 ISPs (fan-out is parallel), versus hours of sequential manual provisioning — the \
         'almost instantly deploy worldwide ingress filtering rules' claim of Sec. 4.3. The \
         fallback adds the detection timeout but still configures every device.",
    );
    report
}
