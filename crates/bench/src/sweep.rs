//! Work-stealing sharded sweep engine over the full
//! (experiment × scenario × seed) grid (DESIGN.md §6.6).
//!
//! The pre-sweep harness ran one experiment at a time with only
//! per-experiment `par_iter` inside each module: cores idled at every
//! experiment boundary and the serial experiments (E13's cell loop) never
//! parallelized at all. This module flattens *every* requested
//! experiment's scenario cells, replicated under N deterministically
//! derived child seeds, into a single task pool drained by work-stealing
//! shards:
//!
//! * each **task** is one independent simulator run — a `(cell,
//!   replicate)` grid point with its own seed from [`replicate_seed`];
//! * each **shard** (worker thread) owns a task deque and an independent
//!   [`Stats`] accumulator; an idle shard steals half the largest
//!   remaining deque, so long cells (an e13 fault sweep) backfill behind
//!   short ones (an e3 probe run) with no barrier in between;
//! * per-shard `Stats` fold with the commutative, associative
//!   [`Stats::merge`], so *any* stealing schedule produces one identical
//!   aggregate;
//! * report JSON is written **shard-order-independent**: per-cell metric
//!   vectors are ordered by replicate index, cells are stably sorted by
//!   grid key `(experiment, scenario, base_seed)` before serialization,
//!   and the serializer is a hand-rolled deterministic writer — so the
//!   bytes are identical at any thread count (CI-enforced at
//!   `RAYON_NUM_THREADS=1` vs `=4`).
//!
//! Replication (`--replicate N`, default 32 in sweep mode) turns each
//! scenario cell into N seed-varied runs and the report's single values
//! into mean / stddev / 95% confidence-interval columns — the
//! seed-replicated evaluation style of the related-work field (Li et al.;
//! El Defrawy et al.) that a single-seed table cannot provide.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dtcs::netsim::rng::child_seed;
use dtcs::netsim::Stats;

use crate::util::{hist_health, wheel_health};
use crate::RunOpts;

/// One finished grid-point run: the numeric metrics that feed the
/// replicate aggregation, plus the run's full [`Stats`] for shard
/// accumulation and invariant enforcement.
pub struct CellRun {
    /// Named numeric outcomes (a table row, flattened). Optional metrics
    /// (e.g. a stop distance with no drops) are simply absent; the
    /// aggregation tracks per-metric sample counts.
    pub metrics: BTreeMap<String, f64>,
    /// The run's engine statistics.
    pub stats: Stats,
}

/// One scenario cell of the grid: everything but the seed.
pub struct SweepCell {
    /// Owning experiment id (`"e2"`, …).
    pub experiment: &'static str,
    /// Stable scenario label, unique within the experiment — the second
    /// component of the grid key (e.g. `"reflector/scheme=tcs(30%)"`).
    pub scenario: String,
    /// The seed the single-run experiment uses for this cell; replicate 0
    /// reuses it verbatim so the sweep brackets the golden tables.
    pub base_seed: u64,
    /// Run the cell under one derived seed.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(u64) -> CellRun + Send + Sync>,
}

/// An experiment that exposes its scenario grid to the sweep engine.
/// Porting an experiment is: enumerate cells here, keep the bespoke
/// single-run `run()` for the golden tables. (E2/E3/E13 are ported;
/// the rest of the registry migrates behind this same trait.)
pub trait GridExperiment: Sync {
    /// Experiment id, matching the [`crate::EXPERIMENTS`] registry.
    fn id(&self) -> &'static str;
    /// Enumerate the experiment's scenario cells.
    fn cells(&self, opts: &RunOpts) -> Vec<SweepCell>;
}

/// Stream salt separating sweep-replicate seed derivation from every
/// other [`child_seed`] consumer (the trace sampler salts with packet
/// ids, scenario setup with small constants).
const REPLICATE_STREAM: u64 = 0x5357_4545_5000_0000; // "SWEEP"

/// Deterministic seed for replicate `r` of a cell. Replicate 0 is the
/// base seed itself, so every sweep contains the exact single-run rows
/// of the golden tables; replicates 1.. are independent SplitMix64
/// children on a dedicated stream.
pub fn replicate_seed(base_seed: u64, replicate: u32) -> u64 {
    if replicate == 0 {
        base_seed
    } else {
        child_seed(base_seed, REPLICATE_STREAM | replicate as u64)
    }
}

/// Shard count: `RAYON_NUM_THREADS` when set (the knob CI pins for the
/// thread-count-invariance gate, and the one users already know from the
/// per-experiment `par_iter`s), else all available cores.
pub fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Per-shard execution accounting (print-only; never serialized).
#[derive(Default)]
pub struct ShardReport {
    /// Tasks this shard executed.
    pub tasks: usize,
    /// Successful steal operations (half a victim deque each).
    pub steals: u64,
    /// Wall time spent inside task bodies.
    pub busy: Duration,
}

/// Everything one grid execution produces.
pub struct GridOutcome {
    /// Per-task metrics, sorted by task index (= `cell * replicates + r`,
    /// i.e. grid order) — independent of the stealing schedule.
    pub task_metrics: Vec<(usize, BTreeMap<String, f64>)>,
    /// Per-task wall durations, indexed like `task_metrics` (feeds the
    /// `sweep_scaling` bench; print-only).
    pub task_durations: Vec<Duration>,
    /// All shards' stats folded with [`Stats::merge`] (series stripped:
    /// cross-experiment series have incommensurable bucket widths, and
    /// the aggregate exists for engine-health lines only).
    pub merged_stats: Stats,
    /// Per-shard accounting.
    pub shards: Vec<ShardReport>,
    /// End-to-end wall time of the pool drain.
    pub wall: Duration,
}

/// Worker-local state, returned when the shard's deque (and every
/// victim's) is dry.
#[derive(Default)]
struct ShardOut {
    results: Vec<(usize, BTreeMap<String, f64>)>,
    durations: Vec<(usize, Duration)>,
    stats: Stats,
    report: ShardReport,
}

/// Pop from our own deque, or steal half the largest victim deque.
/// Returns `None` only when every deque is empty — since tasks never
/// spawn tasks, that is the termination condition.
fn next_task(queues: &[Mutex<VecDeque<usize>>], me: usize, out: &mut ShardOut) -> Option<usize> {
    if let Some(t) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(t);
    }
    loop {
        let mut best: Option<(usize, usize)> = None; // (len, victim)
        for (i, q) in queues.iter().enumerate() {
            if i == me {
                continue;
            }
            let len = q.lock().expect("queue poisoned").len();
            if len > 0 && best.is_none_or(|(l, _)| len > l) {
                best = Some((len, i));
            }
        }
        let (_, victim) = best?;
        let mut vq = queues[victim].lock().expect("queue poisoned");
        let n = vq.len();
        if n == 0 {
            continue; // raced with the victim draining itself; rescan
        }
        let take = (n / 2).max(1);
        let mut stolen = vq.split_off(n - take);
        drop(vq);
        out.report.steals += 1;
        let first = stolen.pop_front().expect("stole at least one task");
        if !stolen.is_empty() {
            queues[me]
                .lock()
                .expect("queue poisoned")
                .append(&mut stolen);
        }
        return Some(first);
    }
}

/// Drain the flattened `(cell × replicate)` grid with `threads`
/// work-stealing shards. Task index `t` maps to cell `t / replicates`,
/// replicate `t % replicates`; the initial distribution deals tasks
/// round-robin so every shard starts with a spread of cheap and
/// expensive cells.
pub fn run_grid(cells: &[SweepCell], replicates: u32, threads: usize) -> GridOutcome {
    // No silent clamp: zero replicates would mean "run nothing and report
    // it as a sweep". The CLI rejects `--replicate 0` with exit 2; a
    // library caller passing 0 has a bug worth a loud panic.
    assert!(
        replicates >= 1,
        "run_grid requires at least one replicate (replicate 0 is the golden base seed)"
    );
    let replicates = replicates as usize;
    let threads = threads.max(1);
    let n_tasks = cells.len() * replicates;
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..n_tasks).step_by(threads).collect()))
        .collect();

    let started = Instant::now();
    let shard_outs: Vec<ShardOut> = std::thread::scope(|scope| {
        let queues = &queues;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = ShardOut::default();
                    while let Some(t) = next_task(queues, w, &mut out) {
                        let cell = &cells[t / replicates];
                        let r = (t % replicates) as u32;
                        let t0 = Instant::now();
                        let run = (cell.run)(replicate_seed(cell.base_seed, r));
                        let took = t0.elapsed();
                        crate::util::enforce_run_invariants(
                            &format!("sweep {}/{} r{r}", cell.experiment, cell.scenario),
                            &run.stats,
                        );
                        let mut stats = run.stats;
                        stats.series = None;
                        out.stats.merge(&stats);
                        out.results.push((t, run.metrics));
                        out.durations.push((t, took));
                        out.report.tasks += 1;
                        out.report.busy += took;
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep shard panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut task_metrics = Vec::with_capacity(n_tasks);
    let mut durations = vec![Duration::ZERO; n_tasks];
    let mut merged_stats = Stats::default();
    let mut shards = Vec::with_capacity(threads);
    for out in shard_outs {
        task_metrics.extend(out.results);
        for (t, d) in out.durations {
            durations[t] = d;
        }
        merged_stats.merge(&out.stats);
        shards.push(out.report);
    }
    // Canonical grid order: the stealing schedule decided who ran what,
    // but never what the grid contains.
    task_metrics.sort_by_key(|(t, _)| *t);
    GridOutcome {
        task_metrics,
        task_durations: durations,
        merged_stats,
        shards,
        wall,
    }
}

/// Replicate aggregation of one metric: sample mean, sample stddev
/// (n−1), and the 95% confidence-interval half-width under the normal
/// approximation (`1.96 · stddev / √n`). `n` counts the replicates that
/// actually produced the metric (optional metrics may be absent in some
/// runs).
pub struct MetricSummary {
    /// Samples present.
    pub n: u32,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 when n < 2).
    pub stddev: f64,
    /// 95% CI half-width, `mean ± ci95` (0 when n < 2).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Aggregate samples given in replicate order (fixed order ⇒ bit-stable
/// float results ⇒ byte-stable report JSON).
pub fn summarize_metric(values: &[f64]) -> Option<MetricSummary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let (mut min, mut max) = (values[0], values[0]);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let (stddev, ci95) = if values.len() < 2 {
        (0.0, 0.0)
    } else {
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        let sd = var.sqrt();
        (sd, 1.96 * sd / n.sqrt())
    };
    Some(MetricSummary {
        n: values.len() as u32,
        mean,
        stddev,
        ci95,
        min,
        max,
    })
}

/// One cell of a sweep report: the grid key plus per-metric summaries.
pub struct SweepCellReport {
    /// Grid key, first component.
    pub experiment: String,
    /// Grid key, second component.
    pub scenario: String,
    /// Grid key, third component.
    pub base_seed: u64,
    /// Metric name → replicate aggregation, name-sorted.
    pub metrics: BTreeMap<String, MetricSummary>,
}

/// One experiment's sweep output (serialized to `<id>.sweep.json`).
pub struct SweepReport {
    /// Experiment id.
    pub id: String,
    /// Replicates per cell the sweep was asked for.
    pub replicates: u32,
    /// Cells, stably sorted by grid key.
    pub cells: Vec<SweepCellReport>,
}

/// Format an f64 as a JSON number. `Display` for finite f64 is the
/// shortest round-trip form — deterministic and valid JSON. Non-finite
/// values must not reach a report (metrics are screened at insertion).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite metric value {v}");
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl SweepReport {
    /// Deterministic JSON: hand-rolled (fixed field order, BTreeMap
    /// metric order, replicate-ordered float folds) so the bytes depend
    /// only on the grid, never on thread count, steal schedule, or
    /// serializer version.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        s.push_str("  \"mode\": \"sweep\",\n");
        s.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        s.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"experiment\": {},\n",
                json_str(&c.experiment)
            ));
            s.push_str(&format!("      \"scenario\": {},\n", json_str(&c.scenario)));
            s.push_str(&format!("      \"base_seed\": {},\n", c.base_seed));
            s.push_str("      \"metrics\": {");
            for (j, (name, m)) in c.metrics.iter().enumerate() {
                s.push_str(if j == 0 { "\n" } else { ",\n" });
                s.push_str(&format!(
                    "        {}: {{\"n\": {}, \"mean\": {}, \"stddev\": {}, \"ci95\": {}, \
                     \"min\": {}, \"max\": {}}}",
                    json_str(name),
                    m.n,
                    json_f64(m.mean),
                    json_f64(m.stddev),
                    json_f64(m.ci95),
                    json_f64(m.min),
                    json_f64(m.max),
                ));
            }
            s.push_str("\n      }\n    }");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write `<dir>/<id>.sweep.json`.
    pub fn save(&self, dir: &std::path::Path) {
        std::fs::create_dir_all(dir).expect("create results dir");
        let path = dir.join(format!("{}.sweep.json", self.id));
        std::fs::write(&path, self.to_json()).expect("write sweep report");
        println!("[saved {}]", path.display());
    }

    /// Print the mean ± CI table.
    pub fn print(&self) {
        println!("\n==================================================================");
        println!(
            "{} SWEEP: {} cells x {} replicates",
            self.id.to_uppercase(),
            self.cells.len(),
            self.replicates
        );
        println!("==================================================================");
        let header: Vec<String> = ["scenario", "metric", "mean", "stddev", "ci95", "n"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut rows = Vec::new();
        for c in &self.cells {
            for (name, m) in &c.metrics {
                rows.push(vec![
                    c.scenario.clone(),
                    name.clone(),
                    crate::util::f(m.mean),
                    crate::util::f(m.stddev),
                    crate::util::f(m.ci95),
                    m.n.to_string(),
                ]);
            }
        }
        dtcs::print_table(&header, &rows);
    }
}

/// A whole sweep invocation's output.
pub struct SweepOutcome {
    /// One report per requested experiment, request order.
    pub reports: Vec<SweepReport>,
    /// Print-only engine-health and shard-accounting lines.
    pub health: Vec<String>,
    /// Total tasks executed.
    pub tasks: usize,
    /// Pool wall time.
    pub wall: Duration,
}

/// Run the full sweep: flatten every experiment's cells into ONE pool
/// (that is the point — e13's long fault cells drain alongside e3's
/// short probe cells), execute with `threads` work-stealing shards,
/// aggregate replicates, and assemble per-experiment reports sorted by
/// grid key.
pub fn run_sweep(
    experiments: &[&dyn GridExperiment],
    opts: &RunOpts,
    replicates: u32,
    threads: usize,
) -> SweepOutcome {
    assert!(
        replicates >= 1,
        "run_sweep requires at least one replicate (replicate 0 is the golden base seed)"
    );
    let mut cells: Vec<SweepCell> = Vec::new();
    for e in experiments {
        cells.extend(e.cells(opts));
    }
    let grid = run_grid(&cells, replicates, threads);

    // Per-cell, per-metric sample vectors in replicate order.
    let mut per_cell: Vec<BTreeMap<String, Vec<f64>>> =
        (0..cells.len()).map(|_| BTreeMap::new()).collect();
    for (t, metrics) in &grid.task_metrics {
        let c = t / replicates as usize;
        for (k, v) in metrics {
            if v.is_finite() {
                per_cell[c].entry(k.clone()).or_default().push(*v);
            }
        }
    }

    let mut reports = Vec::new();
    for e in experiments {
        let id = e.id();
        let mut cell_reports: Vec<SweepCellReport> = cells
            .iter()
            .zip(per_cell.iter())
            .filter(|(c, _)| c.experiment == id)
            .map(|(c, samples)| SweepCellReport {
                experiment: c.experiment.to_string(),
                scenario: c.scenario.clone(),
                base_seed: c.base_seed,
                metrics: samples
                    .iter()
                    .filter_map(|(k, vs)| summarize_metric(vs).map(|m| (k.clone(), m)))
                    .collect(),
            })
            .collect();
        cell_reports.sort_by(|a, b| (&a.scenario, a.base_seed).cmp(&(&b.scenario, b.base_seed)));
        reports.push(SweepReport {
            id: id.to_string(),
            replicates,
            cells: cell_reports,
        });
    }

    let shard_line = format!(
        "sweep pool: {} tasks ({} cells x {} replicates) over {} shards in {:.2}s; \
         {} steals; per-shard tasks [{}]",
        grid.task_metrics.len(),
        cells.len(),
        replicates,
        grid.shards.len(),
        grid.wall.as_secs_f64(),
        grid.shards.iter().map(|s| s.steals).sum::<u64>(),
        grid.shards
            .iter()
            .map(|s| s.tasks.to_string())
            .collect::<Vec<_>>()
            .join(" "),
    );
    let health = vec![
        shard_line,
        wheel_health(std::iter::once(&grid.merged_stats)),
        hist_health(std::iter::once(&grid.merged_stats)),
    ];
    SweepOutcome {
        reports,
        health,
        tasks: grid.task_metrics.len(),
        wall: grid.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic grid: cheap deterministic "runs" whose metrics encode
    /// the seed, so schedule mix-ups are visible.
    fn toy_cells(n: usize) -> Vec<SweepCell> {
        (0..n)
            .map(|i| SweepCell {
                experiment: "toy",
                scenario: format!("cell={i:02}"),
                base_seed: 100 + i as u64,
                run: Box::new(|seed| {
                    let stats = Stats {
                        events: seed % 97,
                        ..Default::default()
                    };
                    let mut metrics = BTreeMap::new();
                    metrics.insert("seed_mod".into(), (seed % 1000) as f64);
                    metrics.insert("one".into(), 1.0);
                    CellRun { metrics, stats }
                }),
            })
            .collect()
    }

    #[test]
    fn replicate_zero_is_base_seed() {
        assert_eq!(replicate_seed(42, 0), 42);
        assert_ne!(replicate_seed(42, 1), 42);
        assert_ne!(replicate_seed(42, 1), replicate_seed(42, 2));
        // Distinct from the plain child_seed streams scenarios use.
        assert_ne!(replicate_seed(42, 1), child_seed(42, 1));
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_is_a_hard_error() {
        run_grid(&toy_cells(1), 0, 2);
    }

    /// Registry completeness: every experiment id must have a grid
    /// adapter — the "no grid adapter yet" era ended with this PR, and a
    /// new experiment that forgets its `Sweep` struct fails here.
    #[test]
    fn every_registered_experiment_is_sweep_capable() {
        for id in crate::ALL {
            assert!(
                crate::sweep_experiment(id).is_some(),
                "{id} is registered in EXPERIMENTS but missing from SWEEP_EXPERIMENTS"
            );
        }
        assert_eq!(crate::SWEEP_EXPERIMENTS.len(), crate::EXPERIMENTS.len());
    }

    /// Cell enumeration sanity for every adapter: non-empty, experiment
    /// ids match, and scenario labels are unique (they are the grid key).
    /// Enumeration only — no cell bodies run, so this stays cheap.
    #[test]
    fn sweep_cells_have_unique_scenario_labels() {
        let opts = RunOpts::quick();
        for e in crate::SWEEP_EXPERIMENTS.iter() {
            let cells = e.cells(&opts);
            assert!(!cells.is_empty(), "{} enumerates no cells", e.id());
            for c in &cells {
                assert_eq!(c.experiment, e.id(), "cell tagged with foreign experiment");
            }
            let mut labels: Vec<&str> = cells.iter().map(|c| c.scenario.as_str()).collect();
            labels.sort_unstable();
            let n = labels.len();
            labels.dedup();
            assert_eq!(n, labels.len(), "{} has duplicate scenario labels", e.id());
        }
    }

    #[test]
    fn grid_output_is_thread_count_invariant() {
        let cells = toy_cells(7);
        let a = run_grid(&cells, 5, 1);
        let b = run_grid(&cells, 5, 4);
        let c = run_grid(&cells, 5, 16); // more shards than tasks per cell
        assert_eq!(a.task_metrics, b.task_metrics);
        assert_eq!(a.task_metrics, c.task_metrics);
        assert_eq!(a.merged_stats, b.merged_stats);
        assert_eq!(a.merged_stats, c.merged_stats);
        assert_eq!(a.task_metrics.len(), 35);
    }

    #[test]
    fn sweep_report_bytes_are_thread_count_invariant() {
        struct Toy;
        impl GridExperiment for Toy {
            fn id(&self) -> &'static str {
                "toy"
            }
            fn cells(&self, _opts: &RunOpts) -> Vec<SweepCell> {
                toy_cells(5)
            }
        }
        let opts = RunOpts::quick();
        let a = run_sweep(&[&Toy], &opts, 4, 1);
        let b = run_sweep(&[&Toy], &opts, 4, 8);
        let ja: Vec<String> = a.reports.iter().map(|r| r.to_json()).collect();
        let jb: Vec<String> = b.reports.iter().map(|r| r.to_json()).collect();
        assert_eq!(ja, jb, "report bytes must not depend on thread count");
        assert!(ja[0].contains("\"mode\": \"sweep\""));
        assert!(ja[0].contains("\"replicates\": 4"));
    }

    #[test]
    fn every_task_runs_exactly_once_under_stealing() {
        // Uneven, serial-heavy grid with many shards: the round-robin
        // deal leaves some shards dry instantly, forcing steals.
        let cells = toy_cells(3);
        let out = run_grid(&cells, 11, 6);
        assert_eq!(out.task_metrics.len(), 33);
        for (i, (t, _)) in out.task_metrics.iter().enumerate() {
            assert_eq!(*t, i, "task {i} missing or duplicated");
        }
        let executed: usize = out.shards.iter().map(|s| s.tasks).sum();
        assert_eq!(executed, 33);
    }

    /// Real-simulator grid, smaller than `--quick`: a sharded run's merged
    /// [`Stats`] must equal the sequential run's field-for-field (the
    /// merge-algebra guarantee on actual workloads, not toy counters).
    #[test]
    fn sharded_e2_stats_equal_sequential() {
        let cells = tiny_e2_cells();
        let seq = run_grid(&cells, 2, 1);
        let par = run_grid(&cells, 2, 4);
        assert_eq!(seq.merged_stats, par.merged_stats);
        assert_eq!(seq.task_metrics, par.task_metrics);
    }

    /// A shrunken e2-style grid (two schemes over a 40-node scenario) —
    /// shared by the equality test above and small enough for CI.
    fn tiny_e2_cells() -> Vec<SweepCell> {
        use dtcs::{run_scenario, ScenarioConfig, Scheme};
        let mut cfg = ScenarioConfig {
            n_nodes: 40,
            ..Default::default()
        };
        cfg.attack.n_agents = 10;
        cfg.attack.n_reflectors = 15;
        cfg.attack.stop_at = dtcs::netsim::SimTime::from_secs(4);
        cfg.duration = dtcs::netsim::SimTime::from_secs(5);
        cfg.n_clients = 6;
        cfg.n_collateral_clients = 4;
        [
            Scheme::None,
            Scheme::Ingress {
                fraction: 0.2,
                placement: dtcs::mitigation::Placement::TopDegree,
            },
        ]
        .into_iter()
        .map(|scheme| {
            let cell_cfg = cfg.clone();
            SweepCell {
                experiment: "e2",
                scenario: format!("tiny/scheme={}", scheme.label()),
                base_seed: cell_cfg.seed,
                run: Box::new(move |seed| {
                    let mut cfg = cell_cfg.clone();
                    cfg.seed = seed;
                    let out = run_scenario(&cfg, &scheme);
                    CellRun {
                        metrics: crate::e2::outcome_metrics(&out.row),
                        stats: out.stats,
                    }
                }),
            }
        })
        .collect()
    }

    #[test]
    fn metric_summary_statistics() {
        let m = summarize_metric(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.n, 4);
        assert!((m.mean - 2.5).abs() < 1e-12);
        assert!((m.stddev - 1.2909944487358056).abs() < 1e-12);
        assert!((m.ci95 - 1.96 * m.stddev / 2.0).abs() < 1e-12);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        let single = summarize_metric(&[7.0]).unwrap();
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.ci95, 0.0);
        assert!(summarize_metric(&[]).is_none());
    }

    #[test]
    fn json_writer_emits_valid_floats() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(1e-9), "0.000000001");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
    }
}
