//! Topology: the AS-level graph and its generators.
//!
//! Three families are provided:
//!
//! * [`Topology::barabasi_albert`] — preferential attachment, yielding the
//!   power-law degree distribution of the real AS graph. Park & Lee's
//!   route-based filtering result (cited in Sec. 3.2 of the paper) is
//!   specifically about power-law internets, so experiment E3 runs here.
//! * [`Topology::transit_stub_multihomed`] — an explicit two-level
//!   hierarchy with a transit core and stub edges, used when experiments
//!   need a crisp notion of "border router of a stub network" (deployment
//!   scoping, Fig. 5).
//! * [`Topology::transit_stub`] — a strict three-level transit/stub/host
//!   hierarchy carrying [`Hierarchy`] metadata, built for 100k–1M-node
//!   scale runs (closed-form hierarchical routing, fluid background
//!   traffic).
//! * small hand-built shapes (line, star, dumbbell) for unit tests.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::link::{Link, LinkProfile};
use crate::node::{LinkId, Node, NodeId, NodeRole};
use crate::rng::seeded;

/// The static network graph.
#[derive(Clone, Debug)]
pub struct Topology {
    /// All nodes; `nodes[i].id == NodeId(i)`.
    pub nodes: Vec<Node>,
    /// All links.
    pub links: Vec<Link>,
    /// Optional strict-hierarchy metadata. Set only by generators whose
    /// graph is a forest of single-homed trees hanging off a small core
    /// ([`Topology::transit_stub`]); lets [`crate::routing::Routing`] pick
    /// its closed-form O(core²)-memory backend instead of the dense
    /// all-pairs tables, which is what makes 100k–1M-node topologies fit
    /// in memory. `None` (every other generator) keeps the dense backend
    /// and its byte-identical behaviour.
    pub hierarchy: Option<Hierarchy>,
}

/// Strict-hierarchy routing metadata: every non-core node has exactly one
/// uplink toward the core, so shortest paths are "walk up, cross the core,
/// walk down" and need no per-destination tables.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Core (transit backbone) node ids, in id order.
    pub core: Vec<NodeId>,
    /// Per node: the unique uplink toward the core (`None` for core
    /// nodes). `up_link[i]` corresponds to `NodeId(i)`.
    pub up_link: Vec<Option<LinkId>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Topology {
        Topology {
            nodes: Vec::new(),
            links: Vec::new(),
            hierarchy: None,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Does this topology distinguish roles at all? Routing's stub-transit
    /// penalty only applies when it does; all-stub test shapes fall back to
    /// plain hop counting. Hoisted out of the per-destination Dijkstra so
    /// callers pay the scan once per (re)compute, not once per tree.
    pub fn has_transit_roles(&self) -> bool {
        self.nodes.iter().any(|n| n.role == NodeRole::Transit)
    }

    /// Append a node with the given role.
    pub fn add_node(&mut self, role: NodeRole) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            role,
            links: Vec::new(),
        });
        id
    }

    /// Connect two nodes with a link built from `profile`.
    ///
    /// Returns `None` if the link would be a duplicate or a self-loop.
    pub fn connect(&mut self, a: NodeId, b: NodeId, profile: LinkProfile) -> Option<LinkId> {
        if a == b || self.are_connected(a, b) {
            return None;
        }
        let id = LinkId(self.links.len());
        self.links.push(profile.link(a, b));
        self.nodes[a.0].links.push(id);
        self.nodes[b.0].links.push(id);
        Some(id)
    }

    /// Is there a direct link between `a` and `b`?
    pub fn are_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a.0]
            .links
            .iter()
            .any(|&l| self.links[l.0].other(a) == b)
    }

    /// Neighbours of `node` with the connecting link.
    pub fn neighbours(&self, node: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.nodes[node.0]
            .links
            .iter()
            .map(move |&l| (self.links[l.0].other(node), l))
    }

    /// All stub-role node ids.
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Stub)
            .map(|n| n.id)
            .collect()
    }

    /// All transit-role node ids.
    pub fn transit_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::Transit)
            .map(|n| n.id)
            .collect()
    }

    /// The `k` nodes of highest degree (ties broken by lower id), i.e. the
    /// "large ISPs" a deployment would court first.
    pub fn top_degree(&self, k: usize) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.n()).map(NodeId).collect();
        ids.sort_by_key(|&id| (std::cmp::Reverse(self.nodes[id.0].degree()), id.0));
        ids.truncate(k);
        ids
    }

    /// Is the whole graph one connected component?
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbours(u) {
                if !seen[v.0] {
                    seen[v.0] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n()
    }

    /// Barabási–Albert preferential attachment graph of `n` nodes, each new
    /// node attaching `m` links. Nodes whose final degree lands in the top
    /// `transit_fraction` are labelled `Transit` (they get backbone links);
    /// the rest are `Stub`.
    pub fn barabasi_albert(n: usize, m: usize, transit_fraction: f64, seed: u64) -> Topology {
        assert!(m >= 1, "m must be >= 1");
        assert!(n > m, "need more nodes than attachment edges");
        let mut rng = seeded(seed ^ 0xBA5E);
        let mut topo = Topology::new();
        // Start from a small clique of m+1 nodes so every new node has
        // enough targets.
        for _ in 0..=m {
            topo.add_node(NodeRole::Stub);
        }
        // `targets` holds one entry per link endpoint, so sampling uniformly
        // from it is degree-proportional sampling.
        let mut targets: Vec<NodeId> = Vec::new();
        for i in 0..=m {
            for j in (i + 1)..=m {
                if topo
                    .connect(NodeId(i), NodeId(j), LinkProfile::transit())
                    .is_some()
                {
                    targets.push(NodeId(i));
                    targets.push(NodeId(j));
                }
            }
        }
        while topo.n() < n {
            let new = topo.add_node(NodeRole::Stub);
            let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
            // Sample m distinct targets preferentially.
            let mut guard = 0;
            while chosen.len() < m && guard < 10_000 {
                guard += 1;
                let &cand = targets.choose(&mut rng).expect("targets non-empty");
                if cand != new && !chosen.contains(&cand) {
                    chosen.push(cand);
                }
            }
            for t in chosen {
                if topo.connect(new, t, LinkProfile::transit()).is_some() {
                    targets.push(new);
                    targets.push(t);
                }
            }
        }
        topo.assign_roles_by_degree(transit_fraction);
        topo.upgrade_core_links();
        topo
    }

    /// Three-level transit–stub–host hierarchy built for scale:
    /// `n_transit` core nodes joined into a connected backbone (ring plus
    /// random chords), `stubs_per_transit` single-homed stub routers per
    /// core node, and `hosts_per_stub` leaf hosts per stub router. Every
    /// non-core node has exactly one uplink, so the generator records
    /// [`Hierarchy`] metadata and routing switches to its closed-form
    /// hierarchical backend — linear memory instead of the dense O(n²)
    /// all-pairs tables, which is what lets E2/E3-style scenarios run at
    /// 100k–1M nodes. For the classic two-level multihomed shape the
    /// deployment-scoping experiments use, see
    /// [`Topology::transit_stub_multihomed`].
    pub fn transit_stub(
        n_transit: usize,
        stubs_per_transit: usize,
        hosts_per_stub: usize,
        seed: u64,
    ) -> Topology {
        assert!(n_transit >= 1);
        let mut rng = seeded(seed ^ 0x5CA1_E57AB);
        let mut topo = Topology::new();
        let core: Vec<NodeId> = (0..n_transit)
            .map(|_| topo.add_node(NodeRole::Transit))
            .collect();
        // Ring backbone for guaranteed connectivity.
        for i in 0..n_transit {
            if n_transit > 1 {
                let a = core[i];
                let b = core[(i + 1) % n_transit];
                topo.connect(a, b, LinkProfile::backbone());
            }
        }
        // Random chords: densify to mean core degree ~4 (ring gives 2).
        for _ in 0..n_transit {
            if n_transit >= 4 {
                let a = core[rng.gen_range(0..n_transit)];
                let b = core[rng.gen_range(0..n_transit)];
                topo.connect(a, b, LinkProfile::backbone());
            }
        }
        let mut up_link: Vec<Option<LinkId>> = vec![None; topo.n()];
        for &t in &core {
            for _ in 0..stubs_per_transit {
                let s = topo.add_node(NodeRole::Stub);
                let sl = topo
                    .connect(s, t, LinkProfile::transit())
                    .expect("fresh stub uplink");
                up_link.push(Some(sl));
                for _ in 0..hosts_per_stub {
                    let h = topo.add_node(NodeRole::Stub);
                    let hl = topo
                        .connect(h, s, LinkProfile::access())
                        .expect("fresh host uplink");
                    up_link.push(Some(hl));
                }
            }
        }
        debug_assert_eq!(up_link.len(), topo.n());
        topo.hierarchy = Some(Hierarchy { core, up_link });
        topo
    }

    /// Smallest [`Topology::transit_stub`] instance with at least `n`
    /// nodes, using a fixed fanout (20 stub routers per transit AS, 10
    /// hosts per stub). This is the shape the `--topology transit-stub:<n>`
    /// CLI axis builds.
    pub fn transit_stub_at_least(n: usize, seed: u64) -> Topology {
        const STUBS: usize = 20;
        const HOSTS: usize = 10;
        let per_transit = 1 + STUBS * (1 + HOSTS);
        let n_transit = n.div_ceil(per_transit).max(4);
        Topology::transit_stub(n_transit, STUBS, HOSTS, seed)
    }

    /// Two-level transit–stub hierarchy: `transit` core nodes joined into a
    /// connected backbone (ring plus random chords), and `stubs_per_transit`
    /// stub nodes hanging off each core node. `multihome_prob` gives each
    /// stub a chance of a second uplink to another random transit node.
    pub fn transit_stub_multihomed(
        transit: usize,
        stubs_per_transit: usize,
        multihome_prob: f64,
        seed: u64,
    ) -> Topology {
        assert!(transit >= 1);
        let mut rng = seeded(seed ^ 0x57AB);
        let mut topo = Topology::new();
        let core: Vec<NodeId> = (0..transit)
            .map(|_| topo.add_node(NodeRole::Transit))
            .collect();
        // Ring backbone for guaranteed connectivity.
        for i in 0..transit {
            if transit > 1 {
                let a = core[i];
                let b = core[(i + 1) % transit];
                topo.connect(a, b, LinkProfile::backbone());
            }
        }
        // Random chords: densify to mean core degree ~4.
        let extra = transit; // one extra chord per core node on average
        for _ in 0..extra {
            if transit >= 4 {
                let a = core[rng.gen_range(0..transit)];
                let b = core[rng.gen_range(0..transit)];
                topo.connect(a, b, LinkProfile::backbone());
            }
        }
        for &t in &core {
            for _ in 0..stubs_per_transit {
                let s = topo.add_node(NodeRole::Stub);
                topo.connect(s, t, LinkProfile::access());
                if transit > 1 && rng.gen_bool(multihome_prob) {
                    let t2 = core[rng.gen_range(0..transit)];
                    topo.connect(s, t2, LinkProfile::access());
                }
            }
        }
        topo
    }

    /// Waxman random-geometric graph (the other classic internet-topology
    /// generator of the paper's era): nodes are placed uniformly in the
    /// unit square and each pair is connected with probability
    /// `alpha * exp(-d / (beta * sqrt(2)))` where `d` is their Euclidean
    /// distance. A spanning pass afterwards connects any isolated
    /// components through their geometrically closest pair, so the result
    /// is always connected. Roles are assigned by degree like BA.
    pub fn waxman(n: usize, alpha: f64, beta: f64, transit_fraction: f64, seed: u64) -> Topology {
        assert!(n >= 2);
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        let mut rng = seeded(seed ^ 0x3A77);
        let mut topo = Topology::new();
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                topo.add_node(NodeRole::Stub);
                (rng.gen::<f64>(), rng.gen::<f64>())
            })
            .collect();
        let l = std::f64::consts::SQRT_2;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                let p = alpha * (-d / (beta * l)).exp();
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    topo.connect(NodeId(i), NodeId(j), LinkProfile::transit());
                }
            }
        }
        // Connect components: repeatedly join the closest cross-component
        // pair until one component remains.
        loop {
            let comp = topo.components();
            if comp.iter().max().copied() == Some(0) {
                break;
            }
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..n {
                for j in (i + 1)..n {
                    if comp[i] != comp[j] {
                        let dx = pos[i].0 - pos[j].0;
                        let dy = pos[i].1 - pos[j].1;
                        let d = dx * dx + dy * dy;
                        if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                            best = Some((d, i, j));
                        }
                    }
                }
            }
            let (_, i, j) = best.expect("disconnected pair exists");
            topo.connect(NodeId(i), NodeId(j), LinkProfile::transit());
        }
        topo.assign_roles_by_degree(transit_fraction);
        topo.upgrade_core_links();
        topo
    }

    /// Component label per node (0 = the component of node 0's
    /// representative; labels are the smallest node id in each component).
    pub fn components(&self) -> Vec<usize> {
        let n = self.n();
        let mut label = vec![usize::MAX; n];
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![NodeId(start)];
            label[start] = start;
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbours(u) {
                    if label[v.0] == usize::MAX {
                        label[v.0] = start;
                        stack.push(v);
                    }
                }
            }
        }
        label
    }

    /// A path of `n` nodes (tests).
    pub fn line(n: usize) -> Topology {
        let mut topo = Topology::new();
        for _ in 0..n {
            topo.add_node(NodeRole::Stub);
        }
        for i in 1..n {
            topo.connect(NodeId(i - 1), NodeId(i), LinkProfile::transit());
        }
        topo
    }

    /// A star: node 0 is the hub (tests).
    pub fn star(leaves: usize) -> Topology {
        let mut topo = Topology::new();
        let hub = topo.add_node(NodeRole::Transit);
        for _ in 0..leaves {
            let leaf = topo.add_node(NodeRole::Stub);
            topo.connect(hub, leaf, LinkProfile::access());
        }
        topo
    }

    /// Classic dumbbell: `left` sources and `right` sinks joined by one
    /// bottleneck link between two transit nodes (tests, pushback).
    pub fn dumbbell(left: usize, right: usize, bottleneck: LinkProfile) -> Topology {
        let mut topo = Topology::new();
        let l_hub = topo.add_node(NodeRole::Transit);
        let r_hub = topo.add_node(NodeRole::Transit);
        topo.connect(l_hub, r_hub, bottleneck);
        for _ in 0..left {
            let s = topo.add_node(NodeRole::Stub);
            topo.connect(s, l_hub, LinkProfile::access());
        }
        for _ in 0..right {
            let s = topo.add_node(NodeRole::Stub);
            topo.connect(s, r_hub, LinkProfile::access());
        }
        topo
    }

    /// Label the `frac` highest-degree nodes as transit, the rest stub.
    fn assign_roles_by_degree(&mut self, frac: f64) {
        let k = ((self.n() as f64 * frac).ceil() as usize).clamp(1, self.n());
        let top = self.top_degree(k);
        for n in &mut self.nodes {
            n.role = NodeRole::Stub;
        }
        for id in top {
            self.nodes[id.0].role = NodeRole::Transit;
        }
    }

    /// Upgrade links between two transit nodes to the backbone profile and
    /// stub uplinks to the access profile, preserving graph structure.
    fn upgrade_core_links(&mut self) {
        for l in &mut self.links {
            let ra = self.nodes[l.a.0].role;
            let rb = self.nodes[l.b.0].role;
            let profile = match (ra, rb) {
                (NodeRole::Transit, NodeRole::Transit) => LinkProfile::backbone(),
                (NodeRole::Stub, NodeRole::Stub) => LinkProfile::access(),
                _ => LinkProfile::transit(),
            };
            l.bandwidth_bps = profile.bandwidth_bps;
            l.latency = profile.latency;
            l.queue_limit_bytes = profile.queue_limit_bytes;
        }
    }

    /// Is `customer` on the customer side of `provider` (i.e. may the
    /// provider assume everything arriving from `customer` carries
    /// `customer`-owned sources)? True when the peer is a stub AS and the
    /// provider either is transit or has strictly higher degree — the
    /// degree heuristic covers flat topologies without explicit roles.
    /// This single definition is shared by ingress filtering, the
    /// anti-spoofing device module, and deployment scoping, so all three
    /// judge "customer interfaces" identically.
    pub fn is_customer_of(&self, customer: NodeId, provider: NodeId) -> bool {
        let c = &self.nodes[customer.0];
        let p = &self.nodes[provider.0];
        c.role == NodeRole::Stub && (p.role == NodeRole::Transit || c.degree() < p.degree())
    }

    /// For a node, the set of neighbour nodes that are "customer side".
    /// Used by ingress filtering and the anti-spoofing device module to
    /// know which interfaces may only carry customer-owned sources.
    pub fn customer_neighbours(&self, node: NodeId) -> Vec<NodeId> {
        self.neighbours(node)
            .filter(|&(peer, _)| self.is_customer_of(peer, node))
            .map(|(peer, _)| peer)
            .collect()
    }

    /// Mean degree of the graph.
    pub fn mean_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.links.len() as f64 / self.n() as f64
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

/// Degree histogram helper for verifying power-law shape in tests.
pub fn degree_histogram(topo: &Topology) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for n in &topo.nodes {
        *counts.entry(n.degree()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Convenience: a deterministic RNG type alias for generator internals.
pub type TopoRng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_is_connected_and_right_size() {
        let t = Topology::barabasi_albert(200, 2, 0.1, 1);
        assert_eq!(t.n(), 200);
        assert!(t.is_connected());
        // m=2 attachment: |E| ~ 2n.
        assert!(t.links.len() >= 2 * (200 - 3));
    }

    #[test]
    fn ba_determinism() {
        let a = Topology::barabasi_albert(100, 2, 0.1, 7);
        let b = Topology::barabasi_albert(100, 2, 0.1, 7);
        assert_eq!(a.links.len(), b.links.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!((la.a, la.b), (lb.a, lb.b));
        }
    }

    #[test]
    fn ba_degree_skew() {
        let t = Topology::barabasi_albert(500, 2, 0.1, 3);
        let max_deg = t.nodes.iter().map(Node::degree).max().unwrap();
        let mean = t.mean_degree();
        // Power-law graphs have hubs far above the mean.
        assert!(
            max_deg as f64 > 4.0 * mean,
            "max {max_deg} vs mean {mean:.2}"
        );
    }

    #[test]
    fn ba_roles_cover_requested_fraction() {
        let t = Topology::barabasi_albert(300, 2, 0.1, 5);
        let transit = t.transit_nodes().len();
        assert_eq!(transit, 30);
        assert_eq!(t.stub_nodes().len(), 270);
    }

    #[test]
    fn transit_stub_multihomed_structure() {
        let t = Topology::transit_stub_multihomed(5, 10, 0.2, 11);
        assert_eq!(t.n(), 5 + 50);
        assert!(t.is_connected());
        assert_eq!(t.transit_nodes().len(), 5);
        assert!(t.hierarchy.is_none(), "multihoming breaks strict hierarchy");
        // Every stub has at least one uplink.
        for s in t.stub_nodes() {
            assert!(t.nodes[s.0].degree() >= 1);
        }
    }

    #[test]
    fn transit_stub_is_connected_and_right_size() {
        let t = Topology::transit_stub(6, 4, 3, 11);
        assert_eq!(t.n(), 6 + 6 * 4 + 6 * 4 * 3);
        assert!(t.is_connected());
    }

    #[test]
    fn transit_stub_determinism() {
        let a = Topology::transit_stub(8, 5, 4, 77);
        let b = Topology::transit_stub(8, 5, 4, 77);
        assert_eq!(a.links.len(), b.links.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!((la.a, la.b), (lb.a, lb.b));
        }
        // Different seed reshuffles the core chords.
        let c = Topology::transit_stub(8, 5, 4, 78);
        assert!(
            a.links
                .iter()
                .zip(&c.links)
                .any(|(la, lc)| (la.a, la.b) != (lc.a, lc.b))
                || a.links.len() != c.links.len()
        );
    }

    #[test]
    fn transit_stub_roles() {
        let t = Topology::transit_stub(6, 4, 3, 5);
        assert_eq!(t.transit_nodes().len(), 6);
        assert_eq!(t.stub_nodes().len(), 6 * 4 + 6 * 4 * 3);
    }

    #[test]
    fn transit_stub_hierarchy_invariants() {
        let t = Topology::transit_stub(6, 4, 3, 9);
        let h = t.hierarchy.as_ref().expect("generator records hierarchy");
        assert_eq!(h.core.len(), 6);
        assert_eq!(h.up_link.len(), t.n());
        for (i, up) in h.up_link.iter().enumerate() {
            let is_core = h.core.contains(&NodeId(i));
            match up {
                None => assert!(is_core, "non-core node {i} missing uplink"),
                Some(l) => {
                    assert!(!is_core, "core node {i} must not have an uplink");
                    // The uplink is incident to the node and climbs toward
                    // the core: the far end is either core or one tier up.
                    let far = t.links[l.0].other(NodeId(i));
                    assert!(
                        t.links[l.0].a == NodeId(i) || t.links[l.0].b == NodeId(i),
                        "uplink not incident"
                    );
                    assert!(far.0 < i, "uplinks point at earlier (higher) tiers");
                }
            }
        }
    }

    #[test]
    fn transit_stub_at_least_reaches_target() {
        let t = Topology::transit_stub_at_least(5_000, 3);
        assert!(t.n() >= 5_000, "{} < 5000", t.n());
        assert!(t.is_connected());
        assert!(t.hierarchy.is_some());
    }

    #[test]
    fn no_duplicate_links_or_self_loops() {
        let t = Topology::barabasi_albert(150, 3, 0.1, 9);
        for (i, l) in t.links.iter().enumerate() {
            assert_ne!(l.a, l.b);
            for l2 in &t.links[i + 1..] {
                assert!(
                    !((l.a, l.b) == (l2.a, l2.b) || (l.a, l.b) == (l2.b, l2.a)),
                    "duplicate link"
                );
            }
        }
    }

    #[test]
    fn line_and_star_shapes() {
        let line = Topology::line(4);
        assert_eq!(line.links.len(), 3);
        assert!(line.is_connected());
        let star = Topology::star(6);
        assert_eq!(star.nodes[0].degree(), 6);
        assert!(star.is_connected());
    }

    #[test]
    fn dumbbell_has_single_bottleneck() {
        let t = Topology::dumbbell(3, 3, LinkProfile::access());
        assert!(t.is_connected());
        assert_eq!(t.n(), 8);
        assert!(t.are_connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn top_degree_deterministic_order() {
        let t = Topology::barabasi_albert(100, 2, 0.1, 13);
        let a = t.top_degree(5);
        let b = t.top_degree(5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Degrees are non-increasing along the list.
        for w in a.windows(2) {
            assert!(t.nodes[w[0].0].degree() >= t.nodes[w[1].0].degree());
        }
    }

    #[test]
    fn waxman_is_connected_and_sized() {
        let t = Topology::waxman(150, 0.4, 0.25, 0.1, 7);
        assert_eq!(t.n(), 150);
        assert!(t.is_connected());
        assert!(t.mean_degree() > 2.0, "mean degree {}", t.mean_degree());
    }

    #[test]
    fn waxman_is_deterministic() {
        let a = Topology::waxman(80, 0.4, 0.2, 0.1, 3);
        let b = Topology::waxman(80, 0.4, 0.2, 0.1, 3);
        assert_eq!(a.links.len(), b.links.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!((la.a, la.b), (lb.a, lb.b));
        }
    }

    #[test]
    fn waxman_prefers_short_links() {
        // With strong distance decay, the graph still connects but sparser
        // than with weak decay.
        let tight = Topology::waxman(100, 0.5, 0.05, 0.1, 9);
        let loose = Topology::waxman(100, 0.5, 0.5, 0.1, 9);
        assert!(tight.links.len() < loose.links.len());
        assert!(tight.is_connected());
    }

    #[test]
    fn components_labels_partition() {
        let mut t = Topology::line(3);
        let lonely = t.add_node(NodeRole::Stub);
        let comp = t.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[lonely.0]);
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let t = Topology::star(4);
        let h = degree_histogram(&t);
        // 4 leaves of degree 1, one hub of degree 4.
        assert_eq!(h, vec![(1, 4), (4, 1)]);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, t.n());
    }

    #[test]
    fn customer_neighbours_only_stubs() {
        let t = Topology::transit_stub_multihomed(3, 5, 0.0, 2);
        for tr in t.transit_nodes() {
            for c in t.customer_neighbours(tr) {
                assert_eq!(t.nodes[c.0].role, NodeRole::Stub);
            }
        }
    }
}
