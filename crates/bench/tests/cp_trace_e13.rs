//! `--cp-trace` end-to-end properties over E13 (quick mode):
//!
//! * two same-seed traced runs emit **byte-identical** JSONL (the
//!   determinism contract the CI `cp-trace-validate` job also checks
//!   through the binary);
//! * `--fluid` composes with `--cp-trace`: e13 carries no scenario
//!   background traffic, so the flag must neither crash the traced run
//!   nor perturb the control-plane record by a single byte;
//! * tracing is observation-only — the report's tables and notes are
//!   identical with tracing on or off (the golden-JSON invariance,
//!   asserted on the display rows so it holds offline too);
//! * the sidecar metrics snapshot (`<trace>.metrics.json` / `.prom`)
//!   is written and carries both engine and protocol counters;
//! * the captured trace satisfies the `trace-report` analyzer's gates
//!   (every transaction terminal, funnel balanced, 100% attribution).

use std::fs;
use std::path::PathBuf;

use dtcs_bench::util::Report;
use dtcs_bench::{run_experiment, trace_report, RunOpts};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dtcs_cp_trace_e13_test");
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

fn run_e13(cp_trace: Option<PathBuf>, fluid: bool) -> Report {
    let opts = RunOpts {
        quick: true,
        cp_trace,
        fluid,
        ..Default::default()
    };
    run_experiment("e13", &opts).expect("e13 is registered")
}

/// The serialisable face of a report: display rows and notes (health is
/// print-only by design and excluded — it is *expected* to differ, the
/// traced run appends a cp-trace line there).
fn visible(r: &Report) -> (Vec<Vec<Vec<String>>>, Vec<String>) {
    (
        r.tables.iter().map(|t| t.rows.clone()).collect(),
        r.notes.clone(),
    )
}

#[test]
fn cp_trace_is_deterministic_fluid_safe_and_report_invariant() {
    let (p1, p2, p3) = (tmp("a.jsonl"), tmp("b.jsonl"), tmp("c.jsonl"));

    let plain = run_e13(None, false);
    let traced = run_e13(Some(p1.clone()), false);
    let again = run_e13(Some(p2.clone()), false);
    let fluid = run_e13(Some(p3.clone()), true);

    // Determinism: same seed, byte-identical record; --fluid is inert
    // for e13 and must leave the record untouched too.
    let t1 = fs::read(&p1).expect("trace written");
    assert!(!t1.is_empty(), "traced cell must record events");
    assert_eq!(
        t1,
        fs::read(&p2).expect("second trace"),
        "same-seed runs differ"
    );
    assert_eq!(
        t1,
        fs::read(&p3).expect("fluid trace"),
        "--fluid perturbed the trace"
    );

    // Observation-only: every serialisable part of the report is
    // unchanged by tracing (and by --fluid, which e13 ignores).
    assert_eq!(visible(&plain), visible(&traced));
    assert_eq!(visible(&plain), visible(&again));
    assert_eq!(visible(&plain), visible(&fluid));
    assert!(
        traced.health.iter().any(|h| h.contains("cp-trace:")),
        "traced run reports the capture in print-only health"
    );

    // Sidecar metrics snapshot: fixed-order registry with engine +
    // protocol counters, in both exposition formats.
    let metrics =
        fs::read_to_string(format!("{}.metrics.json", p1.display())).expect("metrics.json");
    assert!(
        metrics.starts_with('{') && metrics.ends_with("}\n"),
        "{metrics}"
    );
    assert!(metrics.contains("\"cp_msgs\":"), "engine counter missing");
    assert!(
        metrics.contains("\"cp_retransmits\":"),
        "protocol counter missing"
    );
    let prom = fs::read_to_string(format!("{}.prom", p1.display())).expect("prom");
    assert!(prom.contains("# TYPE dtcs_cp_msgs counter\n"), "{prom}");
    assert!(
        prom.contains("# TYPE dtcs_cp_reconcile_sweeps counter\n"),
        "{prom}"
    );

    // The record passes every analyzer gate and attributes the full
    // convergence window.
    let text = String::from_utf8(t1).expect("jsonl is utf-8");
    let evs: Vec<_> = text
        .lines()
        .enumerate()
        .map(|(i, l)| trace_report::parse_line(l).unwrap_or_else(|e| panic!("line {}: {e}", i + 1)))
        .collect();
    let analysis = trace_report::analyze(&evs).expect("gates pass");
    assert!(analysis.groups >= 1, "the user transaction is keyed");
    assert!(analysis.window_ns() > 0, "a lossy crash cell takes time");
    assert_eq!(
        analysis.buckets.values().sum::<u64>(),
        analysis.window_ns(),
        "attribution must cover 100% of the window"
    );
    assert!(
        analysis.buckets["channel_loss"] > 0 || analysis.buckets["retry_backoff_idle"] > 0,
        "a 20%-loss cell must charge time to the fault plane: {:?}",
        analysis.buckets
    );
}
