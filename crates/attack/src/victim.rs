//! Victim server and legitimate clients.
//!
//! The victim models the resource-exhaustion failure mode the paper calls
//! out against pushback (Sec. 3.1): a server farm whose *processing
//! capacity*, not uplink, is the bottleneck. Capacity is a packets-per-
//! second token bucket; any packet that arrives beyond it — attack or not —
//! is turned away ([`Disposition::Overloaded`]). Clients issue periodic
//! requests and count answered ones; the ratio of answered requests is the
//! goodput metric reported by experiments E2/E4.

use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::{
    Addr, App, AppApi, Disposition, Packet, PacketBuilder, Proto, SimDuration, SimTime,
    TrafficClass,
};

/// Victim-side counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct VictimStats {
    /// Legitimate requests served (replied to).
    pub served_legit: u64,
    /// Packets turned away for lack of capacity.
    pub overloaded: u64,
    /// Attack packets that consumed capacity (ground truth, metrics only).
    pub attack_absorbed: u64,
    /// Attack bytes received.
    pub attack_bytes: u64,
    /// Total packets received (any class).
    pub received: u64,
    /// First instant the server ran out of capacity (ns), if ever.
    pub first_overload_nanos: Option<u64>,
}

/// Shared handle to victim counters.
pub type VictimHandle = Arc<Mutex<VictimStats>>;

/// The attacked server.
pub struct VictimApp {
    /// Processing capacity in packets/second.
    capacity_pps: f64,
    /// Reply size for served requests.
    reply_size: u32,
    /// Host-level accept filter: when set, only these sources are served.
    /// Non-matching packets still consume capacity — host-level filtering
    /// happens *after* the resource was spent, which is why the i3-style
    /// defense fails against resource exhaustion when the victim's IP is
    /// known (Sec. 3.1).
    allow_only: Option<Vec<Addr>>,
    tokens: f64,
    max_tokens: f64,
    last: SimTime,
    stats: VictimHandle,
}

impl VictimApp {
    /// Server with a given processing capacity (pps). Burst tolerance is
    /// one tenth of a second of capacity.
    pub fn new(capacity_pps: f64, reply_size: u32) -> (VictimApp, VictimHandle) {
        let stats: VictimHandle = Arc::new(Mutex::new(VictimStats::default()));
        let burst = (capacity_pps / 10.0).max(2.0);
        (
            VictimApp {
                capacity_pps,
                reply_size,
                allow_only: None,
                tokens: burst,
                max_tokens: burst,
                last: SimTime::ZERO,
                stats: stats.clone(),
            },
            stats,
        )
    }

    /// Restrict host-level service to these source addresses (i3-style
    /// indirection: the victim only talks to its relay). Packets from
    /// other sources still consume capacity.
    pub fn restrict_sources(mut self, allowed: Vec<Addr>) -> VictimApp {
        self.allow_only = Some(allowed);
        self
    }

    fn take_capacity(&mut self, now: SimTime) -> bool {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.capacity_pps).min(self.max_tokens);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

impl App for VictimApp {
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        {
            self.stats.lock().received += 1;
        }
        if !self.take_capacity(api.now) {
            let mut s = self.stats.lock();
            s.overloaded += 1;
            if s.first_overload_nanos.is_none() {
                s.first_overload_nanos = Some(api.now.as_nanos());
            }
            return Disposition::Overloaded;
        }
        let is_attack = pkt.provenance.class.is_attack();
        if is_attack {
            let mut s = self.stats.lock();
            s.attack_absorbed += 1;
            s.attack_bytes += pkt.size as u64;
            return Disposition::Consumed;
        }
        // Host-level accept filter: capacity was already spent above.
        if let Some(allowed) = &self.allow_only {
            if !allowed.contains(&pkt.src) {
                return Disposition::Consumed;
            }
        }
        // Serve legitimate requests.
        if matches!(
            pkt.proto,
            Proto::TcpSyn | Proto::TcpData | Proto::DnsQuery | Proto::Udp
        ) {
            let reply_proto = match pkt.proto {
                Proto::TcpSyn => Proto::TcpSynAck,
                Proto::DnsQuery => Proto::DnsResponse,
                _ => Proto::TcpData,
            };
            let b = PacketBuilder::new(
                api.self_addr,
                pkt.src,
                reply_proto,
                TrafficClass::LegitReply,
            )
            .size(self.reply_size)
            .flow(pkt.flow)
            .tag(pkt.payload_tag);
            api.send(b);
            self.stats.lock().served_legit += 1;
        }
        Disposition::Consumed
    }
}

/// Client-side counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub answered: u64,
    /// Sum of response times (seconds) over answered requests.
    pub rtt_sum: f64,
}

impl ClientStats {
    /// Fraction of requests answered.
    pub fn success_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.answered as f64 / self.sent as f64
        }
    }

    /// Mean response time over answered requests.
    pub fn mean_rtt(&self) -> Option<f64> {
        if self.answered == 0 {
            None
        } else {
            Some(self.rtt_sum / self.answered as f64)
        }
    }
}

/// Shared handle to client counters.
pub type ClientHandle = Arc<Mutex<ClientStats>>;

const REQ: u64 = 1;

/// A legitimate client issuing periodic requests to one server.
pub struct ClientApp {
    /// Server under use.
    pub server: Addr,
    /// Request period.
    pub period: SimDuration,
    /// Request protocol.
    pub proto: Proto,
    /// Request size.
    pub req_size: u32,
    /// Stop sending at this time.
    pub stop_at: SimTime,
    seq: u64,
    outstanding: Vec<(u64, SimTime)>,
    stats: ClientHandle,
}

impl ClientApp {
    /// Client of `server` sending one request every `period`.
    pub fn new(server: Addr, period: SimDuration) -> (ClientApp, ClientHandle) {
        let stats: ClientHandle = Arc::new(Mutex::new(ClientStats::default()));
        (
            ClientApp {
                server,
                period,
                proto: Proto::TcpSyn,
                req_size: 60,
                stop_at: SimTime::MAX,
                seq: 0,
                outstanding: Vec::new(),
                stats: stats.clone(),
            },
            stats,
        )
    }

    /// Builder: request protocol and size.
    pub fn request(mut self, proto: Proto, size: u32) -> ClientApp {
        self.proto = proto;
        self.req_size = size;
        self
    }

    /// Builder: stop time.
    pub fn until(mut self, stop_at: SimTime) -> ClientApp {
        self.stop_at = stop_at;
        self
    }
}

impl App for ClientApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        // Desynchronise clients across the population.
        use rand::Rng;
        let phase = SimDuration(api.rng.gen_range(0..self.period.as_nanos().max(1)));
        api.set_timer(phase, REQ);
    }

    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if let Some(pos) = self
            .outstanding
            .iter()
            .position(|&(tag, _)| tag == pkt.payload_tag)
        {
            let (_, sent_at) = self.outstanding.swap_remove(pos);
            let mut s = self.stats.lock();
            s.answered += 1;
            s.rtt_sum += (api.now - sent_at).as_secs_f64();
        }
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, token: u64) {
        if token != REQ || api.now >= self.stop_at {
            return;
        }
        self.seq += 1;
        let tag = (api.self_addr.0 as u64) << 32 | self.seq;
        let b = PacketBuilder::new(
            api.self_addr,
            self.server,
            self.proto,
            TrafficClass::LegitRequest,
        )
        .size(self.req_size)
        .flow(tag)
        .tag(tag);
        api.send(b);
        self.outstanding.push((tag, api.now));
        if self.outstanding.len() > 64 {
            self.outstanding.remove(0); // oldest request considered lost
        }
        self.stats.lock().sent += 1;
        api.set_timer(self.period, REQ);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{NodeId, Simulator, Topology};

    #[test]
    fn client_server_roundtrips() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 7);
        let server = Addr::new(NodeId(2), 1);
        let client = Addr::new(NodeId(0), 1);
        let (v, vstats) = VictimApp::new(1000.0, 500);
        let (c, cstats) = ClientApp::new(server, SimDuration::from_millis(100));
        sim.install_app(server, Box::new(v));
        sim.install_app(client, Box::new(c.until(SimTime::from_secs(5))));
        sim.run_until(SimTime::from_secs(6));
        let cs = cstats.lock();
        assert!(cs.sent >= 40, "sent={}", cs.sent);
        assert!(cs.success_ratio() > 0.95, "ratio={}", cs.success_ratio());
        assert!(cs.mean_rtt().unwrap() > 0.0);
        assert_eq!(vstats.lock().served_legit, cs.answered);
    }

    #[test]
    fn victim_overloads_under_flood() {
        let topo = Topology::line(2);
        let mut sim = Simulator::new(topo, 7);
        let server = Addr::new(NodeId(1), 1);
        let (v, vstats) = VictimApp::new(10.0, 500); // tiny capacity
        sim.install_app(server, Box::new(v));
        // 1000 packets in one second at a 10 pps server.
        for i in 0..1000u64 {
            let at = SimTime(i * 1_000_000);
            sim.schedule(at, move |s| {
                s.emit_now(
                    NodeId(0),
                    PacketBuilder::new(
                        Addr::new(NodeId(0), 1),
                        Addr::new(NodeId(1), 1),
                        Proto::Udp,
                        TrafficClass::AttackDirect,
                    )
                    .size(100)
                    .flow(i),
                );
            });
        }
        sim.run_until(SimTime::from_secs(2));
        let s = vstats.lock();
        assert!(s.overloaded > 900, "overloaded={}", s.overloaded);
        assert!(s.attack_absorbed <= 30);
        // Overload drops are visible in the global stats too.
        assert!(
            sim.stats
                .drops_for_reason(dtcs_netsim::DropReason::HostOverload)
                .pkts
                > 900
        );
    }

    #[test]
    fn attack_crowds_out_legit_service() {
        let topo = Topology::star(3);
        let mut sim = Simulator::new(topo, 7);
        let server = Addr::new(NodeId(1), 1);
        let client = Addr::new(NodeId(2), 1);
        let (v, _vstats) = VictimApp::new(50.0, 200);
        let (c, cstats) = ClientApp::new(server, SimDuration::from_millis(50));
        sim.install_app(server, Box::new(v));
        sim.install_app(client, Box::new(c.until(SimTime::from_secs(5))));
        // Heavy flood from node 3 for the middle 3 seconds.
        let agent = AgentAppForTest;
        struct AgentAppForTest;
        impl App for AgentAppForTest {
            fn on_start(&mut self, api: &mut AppApi<'_>) {
                api.set_timer(SimDuration::from_secs(1), 1);
            }
            fn on_packet(&mut self, _api: &mut AppApi<'_>, _pkt: &Packet) -> Disposition {
                Disposition::Consumed
            }
            fn on_timer(&mut self, api: &mut AppApi<'_>, _t: u64) {
                if api.now >= SimTime::from_secs(4) {
                    return;
                }
                let b = PacketBuilder::new(
                    api.self_addr,
                    Addr::new(NodeId(1), 1),
                    Proto::Udp,
                    TrafficClass::AttackDirect,
                )
                .size(100);
                api.send(b);
                api.set_timer(SimDuration::from_millis(1), 1);
            }
        }
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(agent));
        sim.run_until(SimTime::from_secs(6));
        let cs = cstats.lock();
        assert!(
            cs.success_ratio() < 0.8,
            "flood should degrade service: {}",
            cs.success_ratio()
        );
    }
}
