//! Generation-tagged slab arena for in-flight packets.
//!
//! Replaces the recycled-`Box<Packet>` pool: event entries hold a compact
//! 8-byte [`Handle`] instead of a pointer, the backing store is one
//! contiguous `Vec`, and the event hot path never touches the allocator
//! once the arena has grown to the peak in-flight population.
//!
//! Every slot carries a *generation* counter (odd while live, even while
//! free) that is copied into the handle at allocation. A handle whose
//! generation no longer matches its slot — because the slot was freed, or
//! freed and reallocated to a different packet — fails the tag check, so
//! use-after-free and double-free are detected deterministically in every
//! build profile rather than silently reading a stale packet, which is
//! what the old pool did. (The tag wraps after 2³¹ reuse cycles of a
//! single slot; a simulation would need ~10¹⁰ events through one slot to
//! get there.)

/// A ticket for a value stored in an [`Arena`].
///
/// Deliberately small (8 bytes) so event-queue entries stay index-based
/// and cheap to move during timing-wheel cascades.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

struct Slot<T> {
    /// Odd = live, even = free; bumped on every alloc and every free.
    gen: u32,
    val: T,
}

/// A slab arena handing out generation-tagged [`Handle`]s.
///
/// Freed slots go on a free list and are reused before the arena grows,
/// so capacity equals the peak live population. `T: Copy` keeps every
/// operation a plain memcpy with no drop obligations.
pub struct Arena<T: Copy> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T: Copy> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Arena<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (allocated, not yet freed) values.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store a value, reusing a freed slot when one exists.
    pub fn alloc(&mut self, val: T) -> Handle {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                debug_assert_eq!(slot.gen % 2, 0, "free-listed slot must be free");
                slot.gen = slot.gen.wrapping_add(1);
                slot.val = val;
                Handle { idx, gen: slot.gen }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 indices");
                self.slots.push(Slot { gen: 1, val });
                Handle { idx, gen: 1 }
            }
        }
    }

    /// Tag-check a handle, panicking on stale (freed or reused) handles.
    #[inline]
    fn check(&self, h: Handle) -> usize {
        let slot = &self.slots[h.idx as usize];
        assert_eq!(
            slot.gen, h.gen,
            "stale arena handle: slot {} is at generation {}, handle carries {}",
            h.idx, slot.gen, h.gen
        );
        h.idx as usize
    }

    /// Copy the value out, leaving the slot live (the packet's hop-level
    /// working copy; write back with [`Arena::store`] before re-queueing).
    #[inline]
    pub fn take(&self, h: Handle) -> T {
        let idx = self.check(h);
        self.slots[idx].val
    }

    /// Write a value back into a live slot.
    #[inline]
    pub fn store(&mut self, h: Handle, val: T) {
        let idx = self.check(h);
        self.slots[idx].val = val;
    }

    /// Shared access to a live value.
    #[inline]
    pub fn get(&self, h: Handle) -> &T {
        let idx = self.check(h);
        &self.slots[idx].val
    }

    /// Release a slot. The handle (and any copy of it) is dead afterwards:
    /// further use panics on the generation tag.
    #[inline]
    pub fn free(&mut self, h: Handle) {
        let idx = self.check(h);
        self.slots[idx].gen = self.slots[idx].gen.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_free_roundtrip() {
        let mut a: Arena<u64> = Arena::new();
        let h1 = a.alloc(11);
        let h2 = a.alloc(22);
        assert_eq!(a.take(h1), 11);
        assert_eq!(a.take(h2), 22);
        assert_eq!(a.live(), 2);
        a.store(h1, 33);
        assert_eq!(*a.get(h1), 33);
        a.free(h1);
        a.free(h2);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn slots_are_reused_without_growth() {
        let mut a: Arena<u64> = Arena::new();
        let h = a.alloc(1);
        a.free(h);
        for i in 0..1000 {
            let h = a.alloc(i);
            assert_eq!(a.take(h), i);
            a.free(h);
        }
        assert_eq!(a.capacity(), 1, "steady-state reuse must not grow");
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn double_free_panics() {
        let mut a: Arena<u64> = Arena::new();
        let h = a.alloc(1);
        a.free(h);
        a.free(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn use_after_free_panics() {
        let mut a: Arena<u64> = Arena::new();
        let h = a.alloc(1);
        a.free(h);
        let _ = a.take(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_handle_after_reuse_panics() {
        let mut a: Arena<u64> = Arena::new();
        let h_old = a.alloc(1);
        a.free(h_old);
        let h_new = a.alloc(2); // reuses the slot, bumps the generation
        assert_eq!(a.take(h_new), 2);
        let _ = a.take(h_old);
    }
}
