//! E8 — Safety of delegation (Sec. 4.5).
//!
//! The acceptance argument of the paper is that delegated control *cannot*
//! be misused. Three layers are exercised: the deployment-time verifier
//! (misuse-class specs rejected with structured reasons), the
//! by-construction runtime restrictions (headers immutable, payloads
//! shrink-only), and the telemetry budget (event storms suppressed, no
//! amplifying-network effect from the control side).

use serde::Serialize;

use dtcs::device::{
    AdaptiveDevice, DeviceCommand, DeviceReply, MatchExpr, ModuleSpec, OwnerId, SafetyVerifier,
    ServiceSpec, Stage, TriggerAction, TriggerMetric,
};
use dtcs::netsim::{
    Addr, NodeId, PacketBuilder, Prefix, Proto, SimDuration, SimTime, Simulator, Topology,
    TrafficClass,
};

use crate::util::{Report, Table};

/// Base seed for the storm simulators (historically the literal `1`).
const SEED: u64 = 1;

/// Telemetry allowance grid: (ratio, floor KiB).
const ALLOWANCES: [(f64, u64); 4] = [(0.0, 0), (0.001, 16), (0.01, 64), (0.1, 64)];

#[derive(Serialize, Clone)]
struct CaseRow {
    case: String,
    expected: String,
    got: String,
    ok: bool,
}

fn adversarial_corpus() -> Vec<(String, ModuleSpec, &'static str)> {
    vec![
        (
            "rewrite-src (transparent spoofing)".into(),
            ModuleSpec::RewriteHeader {
                new_src: Some(Addr::new(NodeId(9), 9)),
                new_dst: None,
            },
            "HeaderRewrite",
        ),
        (
            "rewrite-dst (rerouting)".into(),
            ModuleSpec::RewriteHeader {
                new_src: None,
                new_dst: Some(Addr::new(NodeId(9), 9)),
            },
            "HeaderRewrite",
        ),
        (
            "ttl-boost (resource-bound evasion)".into(),
            ModuleSpec::TtlModify { delta: 64 },
            "TtlModification",
        ),
        (
            "amplify x100 (amplifying network)".into(),
            ModuleSpec::Amplify { factor: 100 },
            "Amplification",
        ),
        (
            "redirect (attack forwarding)".into(),
            ModuleSpec::Redirect {
                to: Addr::new(NodeId(9), 9),
            },
            "Redirection",
        ),
        (
            "logger 1GB (state exhaustion)".into(),
            ModuleSpec::Logger {
                capacity: 64_000_000,
                sample_one_in: 1,
            },
            "ExcessiveState",
        ),
        (
            "trigger self-loop".into(),
            ModuleSpec::Trigger {
                expr: MatchExpr::any(),
                metric: TriggerMetric::PacketRate,
                threshold: 1.0,
                window: SimDuration::from_secs(1),
                action: TriggerAction::ActivateModule(0),
                tag: 0,
            },
            "SelfTrigger",
        ),
        (
            "rate-limit rate=0 (blackhole-by-parameter)".into(),
            ModuleSpec::RateLimit {
                expr: MatchExpr::any(),
                rate_bytes_per_sec: 0.0,
                burst_bytes: 0,
            },
            "InvalidParameter",
        ),
    ]
}

/// Run E8.
pub fn run(_opts: &crate::RunOpts) -> Report {
    let mut report = Report::new("e8", "Safety of delegated control", "Sec. 4.5");

    // 1. Verifier corpus.
    let verifier = SafetyVerifier::default();
    let mut t = Table::new(
        "adversarial service specs vs the verifier",
        &["case", "expected", "got", "ok"],
    );
    for (name, spec, expected) in adversarial_corpus() {
        let svc = ServiceSpec::chain("adversarial", vec![spec]);
        let got = match verifier.verify(&svc) {
            Ok(()) => "Accepted".to_string(),
            Err(v) => format!("{v:?}")
                .split(['{', ' '])
                .next()
                .unwrap_or("rejected")
                .to_string(),
        };
        let ok = got.starts_with(expected);
        t.push(
            vec![
                name.clone(),
                expected.to_string(),
                got.clone(),
                ok.to_string(),
            ],
            &CaseRow {
                case: name,
                expected: expected.to_string(),
                got,
                ok,
            },
        );
    }
    report.table(t);

    // 2. The same rejection holds end-to-end through a device.
    let (mut dev, handle) = AdaptiveDevice::new(NodeId(0), None);
    let mut rejected = 0;
    for (_, spec, _) in adversarial_corpus() {
        let reply = dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner: OwnerId(1),
            stage: Stage::Dst,
            spec: ServiceSpec::chain("adv", vec![spec]),
        });
        if matches!(reply, Some(DeviceReply::InstallRejected { .. })) {
            rejected += 1;
        }
    }
    report.note(format!(
        "device-level installs: {rejected}/{} adversarial specs rejected, rule table still \
         holds {} rules (nothing leaked through).",
        adversarial_corpus().len(),
        handle.lock().rule_count
    ));

    // 3. Runtime guard: an owner flooding telemetry cannot amplify.
    let topo = Topology::line(3);
    let mut sim = Simulator::new(topo, SEED);
    let owner = OwnerId(5);
    let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
    dev.apply(DeviceCommand::RegisterOwner {
        owner,
        prefixes: vec![Prefix::of_node(NodeId(2))],
        contact: NodeId(2),
    });
    // A hair-trigger that fires/relieves constantly: an event storm.
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner,
        stage: Stage::Dst,
        spec: ServiceSpec::chain(
            "storm",
            vec![ModuleSpec::Trigger {
                expr: MatchExpr::any(),
                metric: TriggerMetric::PacketRate,
                threshold: 0.5,
                window: SimDuration::from_millis(10),
                action: TriggerAction::Notify,
                tag: 1,
            }],
        ),
    });
    sim.add_agent(NodeId(1), Box::new(dev));
    let dst = Addr::new(NodeId(2), 1);
    sim.install_app(dst, Box::new(dtcs::netsim::SinkApp));
    // Bursty traffic: every 50 ms burst trips the 10 ms hair-trigger and
    // then relieves it, two telemetry events per burst — 10k bursts try to
    // emit ~20k events against a ~1k-event budget.
    for burst in 0..10_000u64 {
        for j in 0..2u64 {
            let at = SimTime(burst * 50_000_000 + j * 1_000_000);
            let k = burst * 2 + j;
            sim.schedule(at, move |s| {
                s.emit_now(
                    NodeId(0),
                    PacketBuilder::new(
                        Addr::new(NodeId(0), 1),
                        dst,
                        Proto::Udp,
                        TrafficClass::Background,
                    )
                    .size(100)
                    .flow(k),
                );
            });
        }
    }
    sim.run_until(SimTime::from_secs(520));
    crate::util::enforce_run_invariants("e8/telemetry", &sim.stats);
    let s = handle.lock();
    let processed_bytes = s.redirected_bytes;
    let budget = (processed_bytes as f64 * 0.01) as u64 + 64 * 1024;
    let mut t = Table::new(
        "telemetry budget under an event storm (footnote 1 allowance)",
        &["metric", "value"],
    );
    for (k, v) in [
        ("data bytes processed", processed_bytes),
        ("telemetry bytes emitted", s.telemetry_bytes),
        ("telemetry budget", budget),
        ("events suppressed", s.suppressed_events),
        ("events emitted", s.telemetry_events),
    ] {
        t.push(vec![k.to_string(), v.to_string()], &(k, v));
    }
    report.table(t);
    report.note(format!(
        "telemetry stayed at {:.2}% of processed traffic (allowance 1% + 64 KiB floor); \
         the filter rules of Sec. 4.5 held by construction: headers immutable, packets \
         shrink-only, no device-originated data-plane packets.",
        100.0 * s.telemetry_bytes as f64 / processed_bytes.max(1) as f64
    ));
    drop(s);

    // 4. Allowance sweep (DESIGN.md §5): the telemetry/data ratio bounds
    // the worst-case control-side amplification a hostile owner can
    // extract, linearly and predictably.
    let mut t = Table::new(
        "telemetry allowance sweep under the same event storm",
        &[
            "ratio",
            "floor_kib",
            "events_emitted",
            "events_suppressed",
            "telemetry/data",
        ],
    );
    for (ratio, floor_kib) in ALLOWANCES {
        let (emitted, suppressed, tbytes, dbytes, _stats) =
            storm_with_budget(ratio, floor_kib * 1024, SEED);
        t.push(
            vec![
                format!("{ratio}"),
                floor_kib.to_string(),
                emitted.to_string(),
                suppressed.to_string(),
                format!("{:.4}", tbytes as f64 / dbytes.max(1) as f64),
            ],
            &(ratio, floor_kib, emitted, suppressed),
        );
    }
    report.table(t);
    report.note(
        "Control-side amplification is capped by the configured allowance: even a \
         hair-trigger storm emits at most ratio x data-bytes (+floor) of telemetry.",
    );
    report
}

/// Re-run the storm harness with a custom telemetry budget; returns
/// (events emitted, events suppressed, telemetry bytes, data bytes)
/// plus the simulator stats for the sweep.
fn storm_with_budget(
    ratio: f64,
    floor: u64,
    seed: u64,
) -> (u64, u64, u64, u64, dtcs::netsim::Stats) {
    let topo = Topology::line(3);
    let mut sim = Simulator::new(topo, seed);
    let owner = OwnerId(5);
    let (mut dev, handle) = AdaptiveDevice::new(NodeId(1), None);
    dev.set_telemetry_budget(ratio, floor);
    dev.apply(DeviceCommand::RegisterOwner {
        owner,
        prefixes: vec![Prefix::of_node(NodeId(2))],
        contact: NodeId(2),
    });
    dev.apply(DeviceCommand::InstallService {
        txn: 0,
        lease_until: SimTime::MAX,
        owner,
        stage: Stage::Dst,
        spec: ServiceSpec::chain(
            "storm",
            vec![ModuleSpec::Trigger {
                expr: MatchExpr::any(),
                metric: TriggerMetric::PacketRate,
                threshold: 0.5,
                window: SimDuration::from_millis(10),
                action: TriggerAction::Notify,
                tag: 1,
            }],
        ),
    });
    sim.add_agent(NodeId(1), Box::new(dev));
    let dst = Addr::new(NodeId(2), 1);
    sim.install_app(dst, Box::new(dtcs::netsim::SinkApp));
    for burst in 0..5_000u64 {
        for j in 0..2u64 {
            let at = SimTime(burst * 50_000_000 + j * 1_000_000);
            let k = burst * 2 + j;
            sim.schedule(at, move |s| {
                s.emit_now(
                    NodeId(0),
                    PacketBuilder::new(
                        Addr::new(NodeId(0), 1),
                        dst,
                        Proto::Udp,
                        TrafficClass::Background,
                    )
                    .size(100)
                    .flow(k),
                );
            });
        }
    }
    sim.run_until(SimTime::from_secs(260));
    crate::util::enforce_run_invariants("e8/storm", &sim.stats);
    let s = handle.lock();
    let out = (
        s.telemetry_events,
        s.suppressed_events,
        s.telemetry_bytes,
        s.redirected_bytes,
    );
    drop(s);
    (out.0, out.1, out.2, out.3, sim.stats)
}

/// Sweep-grid adapter: the (pure) verifier corpus plus one cell per
/// telemetry-allowance setting of the budget storm. The expensive 10k-burst
/// headline storm stays single-run only; the 5k-burst budget storm covers
/// the same mechanism per replicate.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn cells(&self, _opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let mut cells = Vec::new();
        cells.push(crate::sweep::SweepCell {
            experiment: "e8",
            scenario: "verifier".to_string(),
            base_seed: SEED,
            run: Box::new(|_seed| {
                let verifier = SafetyVerifier::default();
                let corpus = adversarial_corpus();
                let total = corpus.len();
                let mut rejected_as_expected = 0u64;
                for (_, spec, expected) in corpus {
                    let svc = ServiceSpec::chain("adversarial", vec![spec]);
                    let got = match verifier.verify(&svc) {
                        Ok(()) => "Accepted".to_string(),
                        Err(v) => format!("{v:?}")
                            .split(['{', ' '])
                            .next()
                            .unwrap_or("rejected")
                            .to_string(),
                    };
                    if got.starts_with(expected) {
                        rejected_as_expected += 1;
                    }
                }
                let mut metrics = std::collections::BTreeMap::new();
                metrics.insert("cases".to_string(), total as f64);
                metrics.insert(
                    "rejected_as_expected".to_string(),
                    rejected_as_expected as f64,
                );
                crate::sweep::CellRun {
                    metrics,
                    stats: dtcs::netsim::Stats::default(),
                }
            }),
        });
        for (ratio, floor_kib) in ALLOWANCES {
            cells.push(crate::sweep::SweepCell {
                experiment: "e8",
                scenario: format!("storm/ratio={ratio}/floor={floor_kib}"),
                base_seed: SEED,
                run: Box::new(move |seed| {
                    let (emitted, suppressed, tbytes, dbytes, stats) =
                        storm_with_budget(ratio, floor_kib * 1024, seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("events_emitted".to_string(), emitted as f64);
                    metrics.insert("events_suppressed".to_string(), suppressed as f64);
                    metrics.insert("telemetry_bytes".to_string(), tbytes as f64);
                    metrics.insert("data_bytes".to_string(), dbytes as f64);
                    metrics.insert(
                        "telemetry_ratio".to_string(),
                        tbytes as f64 / dbytes.max(1) as f64,
                    );
                    crate::sweep::CellRun { metrics, stats }
                }),
            });
        }
        cells
    }
}
