//! Fluid fast-path bench: the hybrid fluid/packet engine vs the pure
//! packet engine on the same steady background workload, at 400 / 10k /
//! 100k-node transit-stub internets. The workload mirrors the scenario
//! harness's `--topology` background (node-proportional CBR flows
//! between shuffled stub pairs); the metric is background packets
//! simulated per wall-second — for the fluid runs those packets are
//! virtual (rate aggregates integrated per admission tick), which is
//! exactly the point. Numbers are recorded in
//! `BENCH_fluid_fastpath.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::rng::{child_seed, seeded};
use dtcs::netsim::{
    Addr, FluidDemand, Proto, SimDuration, SimTime, Simulator, SinkApp, Topology, TrafficClass,
};
use rand::seq::SliceRandom;

const SEED: u64 = 7;
/// Demand window in simulated seconds (runs drain for one more).
const SECS: u64 = 5;
const RATE_BPS: f64 = 2e5;
const PKT_SIZE: u32 = 500;

/// The node-proportional flow count `RunOpts::apply_scale` installs.
fn flows_for(n: usize) -> usize {
    (n / 20).clamp(100, 5_000)
}

/// Build a transit-stub internet of >= `n` nodes, install the background
/// workload (fluid aggregates or discrete CBR), run it to completion and
/// return (wall seconds of the run itself, background packets sent).
/// Topology construction and routing compute stay outside the clock.
fn run_once(n: usize, fluid: bool) -> (f64, u64) {
    let topo = Topology::transit_stub_at_least(n, SEED);
    let mut sim = Simulator::new(topo, SEED);
    if fluid {
        sim.enable_fluid(SimDuration::from_millis(50));
    }
    let until = SimTime::from_secs(SECS);
    let mut stubs = sim.topo.stub_nodes();
    let mut rng = seeded(child_seed(SEED, 0xB6F1));
    stubs.shuffle(&mut rng);
    let half = (stubs.len() / 2).max(1);
    for i in 0..flows_for(n) {
        let src = stubs[i % stubs.len()];
        let dst_node = stubs[(i + half) % stubs.len()];
        if src == dst_node {
            continue;
        }
        let dst = Addr::new(dst_node, 0xB7);
        sim.install_app(dst, Box::new(SinkApp));
        sim.add_background_demand(FluidDemand {
            src: Addr::new(src, 0xB6),
            dst,
            proto: Proto::Udp,
            class: TrafficClass::Background,
            rate_bps: RATE_BPS,
            pkt_size: PKT_SIZE,
            until,
        });
    }
    let clock = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(SECS + 1));
    let wall = clock.elapsed().as_secs_f64();
    (wall, sim.stats.class(TrafficClass::Background).sent_pkts)
}

fn bench_fluid_fastpath(c: &mut Criterion) {
    // One instrumented pass per size outside the timing loops: wall
    // clocks, packet throughputs and the hybrid/pure speedup, printed
    // for BENCH_fluid_fastpath.json.
    for n in [400usize, 10_000, 100_000] {
        let (pw, pp) = run_once(n, false);
        let (hw, hp) = run_once(n, true);
        println!(
            "fluid_fastpath probe: n={n} flows={} pure {pw:.3}s ({:.0} pkt/s, {pp} pkts) \
             hybrid {hw:.3}s ({:.0} pkt/s, {hp} pkts) speedup {:.1}x",
            flows_for(n),
            pp as f64 / pw,
            hp as f64 / hw,
            pw / hw
        );
    }

    let mut group = c.benchmark_group("fluid_fastpath");
    group.sample_size(10);
    for n in [400usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("pure", n), &n, |b, &n| {
            b.iter(|| run_once(n, false).1)
        });
        group.bench_with_input(BenchmarkId::new("hybrid", n), &n, |b, &n| {
            b.iter(|| run_once(n, true).1)
        });
    }
    // At 100k nodes the pure engine is probe-only (Criterion would
    // resample minutes of packet slog); the hybrid engine stays cheap
    // enough to sample properly even there.
    group.bench_with_input(
        BenchmarkId::new("hybrid", 100_000),
        &100_000usize,
        |b, &n| b.iter(|| run_once(n, true).1),
    );
    group.finish();
}

criterion_group!(benches, bench_fluid_fastpath);
criterion_main!(benches);
