//! Service catalog: the user-facing services built "on top of the TC
//! service" (Sec. 5.1) and their mapping onto device module graphs.
//!
//! The TCSP "maps the request to service components and instructs network
//! management systems of appropriate ISPs to deploy and configure the
//! service components" — this module is that mapping.

use dtcs_device::{
    FilterRule, GraphNodeSpec, MatchExpr, ModuleSpec, ServiceSpec, Stage, TriggerAction,
    TriggerMetric,
};
use dtcs_netsim::{Prefix, Proto, SimDuration};
use serde::{Deserialize, Serialize};

/// A catalog service a network user can order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CatalogService {
    /// Worldwide anti-spoofing for the owner's prefixes (the DDoS
    /// reflector defense of Sec. 4.3). Stage 1: judged where traffic
    /// claiming the owner's sources enters the network.
    AntiSpoofing,
    /// Distributed firewall over inbound traffic (Sec. 4.4): drop the
    /// given protocols destined to the owner.
    FirewallBlock {
        /// Protocols to drop.
        protos: Vec<Proto>,
    },
    /// Rate-limit inbound traffic to the owner.
    RateLimit {
        /// Bytes per second admitted per device.
        rate_bytes_per_sec: f64,
        /// Burst allowance.
        burst_bytes: u32,
    },
    /// Source blacklist over inbound traffic.
    Blacklist {
        /// Blocked source prefixes.
        sources: Vec<Prefix>,
    },
    /// SPIE-style traceback backlog over traffic claiming the owner's
    /// sources (Sec. 4.4 "Traceback").
    TracebackSupport {
        /// Digest window.
        window: SimDuration,
        /// Windows retained.
        windows: usize,
    },
    /// Traffic statistics / logging over inbound traffic (Sec. 4.4).
    Statistics {
        /// Log ring capacity.
        capacity: usize,
        /// Sample one packet in N.
        sample_one_in: u32,
    },
    /// Automated anomaly reaction (Sec. 4.4): a trigger that activates a
    /// dormant rate limiter when inbound rate exceeds a threshold.
    AnomalyReaction {
        /// Packets/second firing threshold.
        threshold_pps: f64,
        /// Observation window.
        window: SimDuration,
        /// Rate limit applied while the trigger is hot (bytes/second).
        limit_bytes_per_sec: f64,
    },
}

impl CatalogService {
    /// Which processing stage this service runs in.
    pub fn stage(&self) -> Stage {
        match self {
            CatalogService::AntiSpoofing | CatalogService::TracebackSupport { .. } => Stage::Src,
            _ => Stage::Dst,
        }
    }

    /// Compile to a device service spec.
    pub fn compile(&self) -> ServiceSpec {
        match self {
            CatalogService::AntiSpoofing => {
                ServiceSpec::chain("anti-spoofing", vec![ModuleSpec::AntiSpoof])
            }
            CatalogService::FirewallBlock { protos } => ServiceSpec::chain(
                "firewall-block",
                vec![ModuleSpec::Filter {
                    rules: protos
                        .iter()
                        .map(|&p| FilterRule {
                            expr: MatchExpr::proto(p),
                            drop: true,
                        })
                        .collect(),
                }],
            ),
            CatalogService::RateLimit {
                rate_bytes_per_sec,
                burst_bytes,
            } => ServiceSpec::chain(
                "rate-limit",
                vec![ModuleSpec::RateLimit {
                    expr: MatchExpr::any(),
                    rate_bytes_per_sec: *rate_bytes_per_sec,
                    burst_bytes: *burst_bytes,
                }],
            ),
            CatalogService::Blacklist { sources } => ServiceSpec::chain(
                "blacklist",
                vec![ModuleSpec::Blacklist {
                    sources: sources.clone(),
                }],
            ),
            CatalogService::TracebackSupport { window, windows } => ServiceSpec::chain(
                "traceback-support",
                vec![ModuleSpec::DigestBacklog {
                    window: *window,
                    windows: *windows,
                    bits: 1 << 16,
                    hashes: 4,
                }],
            ),
            CatalogService::Statistics {
                capacity,
                sample_one_in,
            } => ServiceSpec::chain(
                "statistics",
                vec![ModuleSpec::Logger {
                    capacity: *capacity,
                    sample_one_in: *sample_one_in,
                }],
            ),
            CatalogService::AnomalyReaction {
                threshold_pps,
                window,
                limit_bytes_per_sec,
            } => ServiceSpec {
                name: "anomaly-reaction".into(),
                modules: vec![
                    GraphNodeSpec {
                        module: ModuleSpec::Trigger {
                            expr: MatchExpr::any(),
                            metric: TriggerMetric::PacketRate,
                            threshold: *threshold_pps,
                            window: *window,
                            action: TriggerAction::ActivateModule(1),
                            tag: 0xA401,
                        },
                        enabled: true,
                    },
                    GraphNodeSpec {
                        module: ModuleSpec::RateLimit {
                            expr: MatchExpr::any(),
                            rate_bytes_per_sec: *limit_bytes_per_sec,
                            burst_bytes: (*limit_bytes_per_sec / 2.0) as u32,
                        },
                        enabled: false, // dormant until the trigger fires
                    },
                ],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_device::SafetyVerifier;

    #[test]
    fn every_catalog_service_passes_the_verifier() {
        let services = vec![
            CatalogService::AntiSpoofing,
            CatalogService::FirewallBlock {
                protos: vec![Proto::TcpRst, Proto::IcmpUnreachable],
            },
            CatalogService::RateLimit {
                rate_bytes_per_sec: 1e6,
                burst_bytes: 100_000,
            },
            CatalogService::Blacklist {
                sources: vec![Prefix::new(0x0A00_0000, 8)],
            },
            CatalogService::TracebackSupport {
                window: SimDuration::from_secs(1),
                windows: 30,
            },
            CatalogService::Statistics {
                capacity: 4096,
                sample_one_in: 16,
            },
            CatalogService::AnomalyReaction {
                threshold_pps: 1000.0,
                window: SimDuration::from_millis(500),
                limit_bytes_per_sec: 1e5,
            },
        ];
        let v = SafetyVerifier::default();
        for s in services {
            let spec = s.compile();
            assert!(v.verify(&spec).is_ok(), "{} must verify", spec.name);
        }
    }

    #[test]
    fn stages_match_semantics() {
        assert_eq!(CatalogService::AntiSpoofing.stage(), Stage::Src);
        assert_eq!(
            CatalogService::RateLimit {
                rate_bytes_per_sec: 1.0,
                burst_bytes: 1
            }
            .stage(),
            Stage::Dst
        );
    }

    #[test]
    fn anomaly_reaction_limiter_starts_dormant() {
        let spec = CatalogService::AnomalyReaction {
            threshold_pps: 10.0,
            window: SimDuration::from_secs(1),
            limit_bytes_per_sec: 1000.0,
        }
        .compile();
        assert!(spec.modules[0].enabled);
        assert!(!spec.modules[1].enabled);
    }
}
