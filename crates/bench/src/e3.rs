//! E3 — Anti-spoofing effectiveness vs deployment coverage
//! (Sec. 3.2's Park & Lee citation: route-based filtering on power-law
//! internets is "highly effective … even if only approximately 20% of the
//! autonomous systems have it in place").
//!
//! Spoofed probes (claiming the victim's source address, as reflector
//! agents do) are injected from random stub ASes toward random
//! destinations; the metric is the fraction that survive. Swept over the
//! deployment fraction for four strategies: static ingress filtering vs
//! the TCS anti-spoofing service, each placed randomly or at top-degree
//! ASes first. The TCS rows measure *one victim's* on-demand deployment;
//! the ingress rows require whole-AS altruism for the same effect.

use rayon::prelude::*;
use serde::Serialize;

use dtcs::attack::hosts;
use dtcs::mitigation::{deploy_ingress, Placement};
use dtcs::netsim::rng::{child_seed, seeded};
use dtcs::netsim::{
    Addr, PacketBuilder, Prefix, Proto, SimTime, Simulator, Topology, TrafficClass,
};
use dtcs::{deploy_tcs_static, TcsStaticConfig};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct Row {
    strategy: String,
    fraction: f64,
    probes: u64,
    survived: u64,
    survival_ratio: f64,
    mean_stop_distance: Option<f64>,
}

#[derive(Clone, Copy)]
enum Strategy {
    Ingress(Placement),
    Tcs(Placement),
}

impl Strategy {
    fn label(self) -> String {
        match self {
            Strategy::Ingress(Placement::Random) => "ingress/random".into(),
            Strategy::Ingress(_) => "ingress/top-degree".into(),
            Strategy::Tcs(Placement::Random) => "tcs/random".into(),
            Strategy::Tcs(_) => "tcs/top-degree".into(),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum TopoKind {
    PowerLaw,
    Waxman,
    TransitStub(usize),
}

/// The topology the main sweep runs on: BA power-law by default, a
/// transit-stub internet of at least `n` nodes under `--topology
/// transit-stub:<n>` (the hybrid-engine scale path).
fn base_kind(opts: &crate::RunOpts) -> TopoKind {
    match opts.transit_stub {
        Some(n) => TopoKind::TransitStub(n),
        None => TopoKind::PowerLaw,
    }
}

fn one(
    strategy: Strategy,
    fraction: f64,
    n_nodes: usize,
    probes: u64,
    seed: u64,
    kind: TopoKind,
    trace: Option<&std::path::Path>,
) -> (Row, dtcs::netsim::Stats) {
    let topo = match kind {
        TopoKind::PowerLaw => Topology::barabasi_albert(n_nodes, 2, 0.1, seed),
        TopoKind::Waxman => Topology::waxman(n_nodes, 0.4, 0.15, 0.1, seed),
        TopoKind::TransitStub(n) => Topology::transit_stub_at_least(n, seed),
    };
    let mut sim = Simulator::new(topo, seed);
    // --trace: attach a flight recorder directly to this simulator (the
    // bare-sim wiring, vs e2's ScenarioConfig route) and record every
    // probe's lifecycle.
    let recorder = trace.map(|_| {
        let rec = std::sync::Arc::new(std::sync::Mutex::new(dtcs::netsim::FlightRecorder::new(
            1 << 20,
        )));
        sim.set_trace_sink(Box::new(std::sync::Arc::clone(&rec)), 1);
        rec
    });
    let stubs = sim.topo.stub_nodes();
    let victim_node = stubs[3 % stubs.len()];
    let victim = Addr::new(victim_node, hosts::SERVICE);

    match strategy {
        Strategy::Ingress(p) => {
            deploy_ingress(&mut sim, fraction, p, child_seed(seed, 3));
        }
        Strategy::Tcs(p) => {
            deploy_tcs_static(
                &mut sim,
                Prefix::of_node(victim_node),
                &TcsStaticConfig {
                    fraction,
                    placement: p,
                    dst_firewall: false, // isolate the anti-spoofing effect
                    seed: child_seed(seed, 3),
                    ..Default::default()
                },
            );
        }
    }

    // Targets: service hosts on random stubs (with listeners, so
    // deliveries are counted as deliveries, not NoListener drops).
    let mut rng = seeded(child_seed(seed, 9));
    let mut targets: Vec<Addr> = stubs
        .iter()
        .filter(|&&n| n != victim_node)
        .map(|&n| Addr::new(n, hosts::SERVICE))
        .collect();
    targets.shuffle(&mut rng);
    targets.truncate(40.min(targets.len()));
    for &t in &targets {
        sim.install_app(t, Box::new(dtcs::netsim::SinkApp));
    }

    // Spoofed probes claiming the victim's address, from random stubs —
    // exactly the packets a reflector agent emits.
    for k in 0..probes {
        let from = stubs[rng.gen_range(0..stubs.len())];
        if from == victim_node {
            continue;
        }
        let dst = targets[rng.gen_range(0..targets.len())];
        let at = SimTime(k * 500_000); // 2000 pps total, spread out
        sim.schedule(at, move |s| {
            s.emit_now(
                from,
                PacketBuilder::new(victim, dst, Proto::TcpSyn, TrafficClass::AttackDirect)
                    .size(40)
                    .flow(k),
            );
        });
    }
    sim.run_until(SimTime::from_secs(10));

    let c = sim.stats.class(TrafficClass::AttackDirect);
    let row = Row {
        strategy: strategy.label(),
        fraction,
        probes: c.sent_pkts,
        survived: c.delivered_pkts,
        survival_ratio: c.delivered_pkts as f64 / c.sent_pkts.max(1) as f64,
        mean_stop_distance: sim.stats.mean_stop_distance_all(TrafficClass::AttackDirect),
    };
    if let (Some(path), Some(rec)) = (trace, recorder) {
        drop(sim.take_trace_sink());
        let rec = std::sync::Arc::try_unwrap(rec)
            .ok()
            .expect("recorder uniquely owned once the sink is detached")
            .into_inner()
            .expect("flight recorder mutex poisoned");
        let mut file = std::fs::File::create(path).expect("create trace file");
        rec.export_jsonl(&mut file).expect("write trace file");
    }
    (row, sim.stats)
}

/// Base seed shared by the single-run tables and the sweep cells.
const SEED: u64 = 33;

/// Sweep-grid adapter: one cell per (topology family, strategy,
/// deployment fraction) — the power-law sweep over all four strategies
/// plus the Waxman contrast over the two TCS strategies.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let (n_nodes, probes, fractions) = params(opts.quick);
        let kind = base_kind(opts);
        let mut cases: Vec<(TopoKind, Strategy, f64)> = Vec::new();
        for &s in &[
            Strategy::Ingress(Placement::Random),
            Strategy::Ingress(Placement::TopDegree),
            Strategy::Tcs(Placement::Random),
            Strategy::Tcs(Placement::TopDegree),
        ] {
            for &fr in &fractions {
                cases.push((kind, s, fr));
            }
        }
        // The Waxman contrast is a 400-node-family statement (hubs vs no
        // hubs); it is dropped when the sweep is re-pointed at a
        // transit-stub internet.
        if opts.transit_stub.is_none() {
            for &s in &[
                Strategy::Tcs(Placement::Random),
                Strategy::Tcs(Placement::TopDegree),
            ] {
                for &fr in &fractions {
                    cases.push((TopoKind::Waxman, s, fr));
                }
            }
        }
        cases
            .into_iter()
            .map(|(kind, s, fr)| crate::sweep::SweepCell {
                experiment: "e3",
                scenario: format!(
                    "{}/{}/fraction={fr:.2}",
                    match kind {
                        TopoKind::PowerLaw => "powerlaw",
                        TopoKind::Waxman => "waxman",
                        TopoKind::TransitStub(_) => "transit-stub",
                    },
                    s.label()
                ),
                base_seed: SEED,
                run: Box::new(move |seed| {
                    let (row, stats) = one(s, fr, n_nodes, probes, seed, kind, None);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("probes".to_string(), row.probes as f64);
                    metrics.insert("survived".to_string(), row.survived as f64);
                    metrics.insert("survival_ratio".to_string(), row.survival_ratio);
                    if let Some(d) = row.mean_stop_distance {
                        metrics.insert("stop_distance".to_string(), d);
                    }
                    crate::sweep::CellRun { metrics, stats }
                }),
            })
            .collect()
    }
}

/// Grid dimensions shared by `run()` and the sweep adapter.
fn params(quick: bool) -> (usize, u64, Vec<f64>) {
    let n_nodes = if quick { 150 } else { 400 };
    let probes = if quick { 1200 } else { 4000 };
    let fractions = if quick {
        vec![0.0, 0.1, 0.2, 0.4, 0.8]
    } else {
        vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0]
    };
    (n_nodes, probes, fractions)
}

/// Run E3.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e3",
        "Spoofed-packet survival vs deployment coverage",
        "Sec. 3.2 (Park & Lee)",
    );
    let (n_nodes, probes, fractions) = params(quick);
    let kind = base_kind(opts);
    let strategies = [
        Strategy::Ingress(Placement::Random),
        Strategy::Ingress(Placement::TopDegree),
        Strategy::Tcs(Placement::Random),
        Strategy::Tcs(Placement::TopDegree),
    ];
    let cases: Vec<(Strategy, f64)> = strategies
        .iter()
        .flat_map(|&s| fractions.iter().map(move |&fr| (s, fr)))
        .collect();
    let (rows, run_stats): (Vec<Row>, Vec<_>) = cases
        .par_iter()
        .map(|&(s, fr)| one(s, fr, n_nodes, probes, SEED, kind, None))
        .collect::<Vec<_>>()
        .into_iter()
        .unzip();
    for s in &run_stats {
        crate::util::enforce_run_invariants("e3", s);
    }
    report.health(crate::util::wheel_health(run_stats.iter()));
    report.health(crate::util::hist_health(run_stats.iter()));

    // --trace: one representative traced run (ingress filtering at 20%
    // top-degree coverage — the Park & Lee headline point), wired straight
    // into the bare simulator.
    if let Some(path) = &opts.trace {
        let (_, stats) = one(
            Strategy::Ingress(Placement::TopDegree),
            0.2,
            n_nodes,
            probes,
            SEED,
            kind,
            Some(path),
        );
        crate::util::enforce_run_invariants("e3/trace", &stats);
        report.health(format!("trace: wrote JSONL to {}", path.display()));
    }

    let title = match kind {
        TopoKind::TransitStub(n) => {
            format!("spoofed-probe survival, transit-stub internet (>= {n} nodes)")
        }
        _ => "spoofed-probe survival, power-law (BA) internet".to_string(),
    };
    let mut t = Table::new(
        &title,
        &[
            "strategy",
            "fraction",
            "probes",
            "survived",
            "survival",
            "stop_dist",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.strategy.clone(),
                format!("{:.2}", r.fraction),
                r.probes.to_string(),
                r.survived.to_string(),
                f(r.survival_ratio),
                crate::util::fopt(r.mean_stop_distance),
            ],
            r,
        );
    }
    report.table(t);

    // Topology-family contrast: Park & Lee's striking 20% number is a
    // *power-law* phenomenon (a few hubs cover most paths). On a Waxman
    // random-geometric internet there are no such hubs, so top-degree
    // placement loses most of its edge — measured here with the TCS rows.
    // A 400-node-family statement, so it is skipped when `--topology`
    // re-points the sweep at a transit-stub internet.
    if opts.transit_stub.is_none() {
        let wax_cases: Vec<(Strategy, f64)> = [
            Strategy::Tcs(Placement::Random),
            Strategy::Tcs(Placement::TopDegree),
        ]
        .iter()
        .flat_map(|&s| fractions.iter().map(move |&fr| (s, fr)))
        .collect();
        let wax_rows: Vec<Row> = wax_cases
            .par_iter()
            .map(|&(s, fr)| {
                let (row, stats) = one(s, fr, n_nodes, probes, SEED, TopoKind::Waxman, None);
                crate::util::enforce_run_invariants("e3/waxman", &stats);
                row
            })
            .collect();
        let mut t = Table::new(
            "same sweep on a Waxman (no-hub) internet",
            &["strategy", "fraction", "survival", "stop_dist"],
        );
        for r in &wax_rows {
            t.push(
                vec![
                    r.strategy.clone(),
                    format!("{:.2}", r.fraction),
                    f(r.survival_ratio),
                    crate::util::fopt(r.mean_stop_distance),
                ],
                r,
            );
        }
        report.table(t);
    }

    // The headline check: top-degree placement at 20%.
    if let Some(r) = rows
        .iter()
        .find(|r| r.strategy == "tcs/top-degree" && (r.fraction - 0.2).abs() < 1e-9)
    {
        report.note(format!(
            "At 20% coverage (top-degree), TCS anti-spoofing already stops {:.0}% of spoofed \
             probes — the Park & Lee shape the paper leans on.",
            (1.0 - r.survival_ratio) * 100.0
        ));
    }
    report
}
