//! Cross-crate integration: the full paper pipeline — control plane
//! (Fig. 3-5), adaptive devices, reflector attack (Fig. 1), legitimate
//! workload — in one simulator.

use dtcs::attack::{install_clients, ReflectorAttack, ReflectorAttackConfig};
use dtcs::control::{
    partition_by_provider, CatalogService, ControlPlane, DeployScope, InternetNumberAuthority,
    UserId,
};
use dtcs::netsim::{DropReason, Prefix, SimDuration, SimTime, Simulator, Topology, TrafficClass};

/// The quickstart scenario as an assertion: registration mid-attack,
/// worldwide anti-spoofing deployment, service recovery.
#[test]
fn register_deploy_mitigate_end_to_end() {
    let topo = Topology::transit_stub_multihomed(4, 12, 0.2, 7);
    let mut sim = Simulator::new(topo, 7);
    let victim_node = sim.topo.stub_nodes()[0];
    let victim_prefix = Prefix::of_node(victim_node);

    let attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: 50,
            n_reflectors: 60,
            agent_rate_pps: 60.0,
            start_at: SimTime::from_secs(5),
            stop_at: SimTime::from_secs(30),
            victim_capacity_pps: 500.0,
            seed: 7,
            ..Default::default()
        },
    );
    let clients = install_clients(
        &mut sim,
        attack.victim,
        15,
        SimDuration::from_millis(250),
        SimTime::from_secs(35),
        7,
    );

    let mut authority = InternetNumberAuthority::new();
    authority.allocate(victim_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp =
        ControlPlane::install(&mut sim, authority, 0xFACE, tcsp_node, authority_node, isps);
    let (_user, record) = cp.add_user(
        &mut sim,
        victim_node,
        vec![victim_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_secs(12),
        false,
    );

    // Phase 1: attack rages undefended.
    sim.run_until(SimTime::from_secs(12));
    let sent_before = clients.iter().map(|h| h.lock().sent).sum::<u64>();
    let answered_before = clients.iter().map(|h| h.lock().answered).sum::<u64>();
    let under_attack_ratio = answered_before as f64 / sent_before.max(1) as f64;

    // Phase 2: user registers + deploys; attack continues.
    sim.run_until(SimTime::from_secs(35));
    let r = record.lock();
    assert!(r.registered_at.is_some(), "registration completed");
    assert!(r.deploy_confirmed_at.is_some(), "deployment confirmed");
    assert!(r.devices_configured > 0);
    assert_eq!(r.installs_rejected, 0);
    drop(r);

    // Spoofed agent requests died at devices.
    let spoof_drops = sim.stats.drops_for_reason(DropReason::SpoofFilter).pkts;
    assert!(spoof_drops > 1000, "anti-spoofing engaged: {spoof_drops}");

    // Post-deployment success far exceeds under-attack success.
    let sent_after = clients.iter().map(|h| h.lock().sent).sum::<u64>() - sent_before;
    let answered_after = clients.iter().map(|h| h.lock().answered).sum::<u64>() - answered_before;
    let post_ratio = answered_after as f64 / sent_after.max(1) as f64;
    assert!(
        post_ratio > under_attack_ratio + 0.2,
        "service must recover after deployment: {under_attack_ratio:.3} -> {post_ratio:.3}"
    );
    sim.stats.check_conservation().unwrap();
}

/// Misconfigured users cannot register for prefixes they do not own, and
/// therefore cannot affect anyone's traffic (Sec. 4.1 safe delegation).
#[test]
fn foreign_prefix_claims_are_powerless() {
    let topo = Topology::transit_stub_multihomed(3, 8, 0.2, 9);
    let mut sim = Simulator::new(topo, 9);
    let victim_node = sim.topo.stub_nodes()[0];
    let foreign_node = sim.topo.stub_nodes()[3];
    let authority = {
        let mut a = InternetNumberAuthority::new();
        // The attacker-user owns their own prefix but claims the victim's.
        a.allocate(Prefix::of_node(foreign_node), UserId(0xAA01));
        a
    };
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp =
        ControlPlane::install(&mut sim, authority, 0xFACE, tcsp_node, authority_node, isps);
    // A malicious user tries to firewall the *victim's* prefix.
    let (_user, record) = cp.add_user(
        &mut sim,
        foreign_node,
        vec![Prefix::of_node(victim_node)],
        CatalogService::FirewallBlock {
            protos: vec![dtcs::netsim::Proto::TcpSyn],
        },
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    // Legit traffic to the victim flows meanwhile.
    let victim = dtcs::netsim::Addr::new(victim_node, 1);
    sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
    for k in 0..50u64 {
        let from = sim.topo.stub_nodes()[4];
        let at = SimTime::from_millis(500 + k * 100);
        sim.schedule(at, move |s| {
            s.emit_now(
                from,
                dtcs::netsim::PacketBuilder::new(
                    dtcs::netsim::Addr::new(from, 2),
                    victim,
                    dtcs::netsim::Proto::TcpSyn,
                    TrafficClass::LegitRequest,
                )
                .size(60)
                .flow(k),
            );
        });
    }
    sim.run_until(SimTime::from_secs(10));
    assert!(record.lock().denied, "ownership check must deny the claim");
    assert_eq!(cp.total_rules(), 0, "no rules installed anywhere");
    assert_eq!(
        sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
        50,
        "victim's traffic untouched"
    );
}

/// Scoped deployment: stub-border scoping configures only transit routers
/// with customers, yet still provides full anti-spoofing coverage for
/// traffic crossing the core.
#[test]
fn stub_border_scope_still_blocks_spoofing() {
    let topo = Topology::transit_stub_multihomed(4, 10, 0.0, 11);
    let mut sim = Simulator::new(topo, 11);
    let victim_node = sim.topo.stub_nodes()[0];
    let victim_prefix = Prefix::of_node(victim_node);
    let mut authority = InternetNumberAuthority::new();
    authority.allocate(victim_prefix, UserId(0xAA01));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let mut cp =
        ControlPlane::install(&mut sim, authority, 0xFACE, tcsp_node, authority_node, isps);
    let (_user, record) = cp.add_user(
        &mut sim,
        victim_node,
        vec![victim_prefix],
        CatalogService::AntiSpoofing,
        DeployScope::StubBorders,
        SimTime::from_millis(100),
        false,
    );
    sim.run_until(SimTime::from_secs(2));
    assert!(record.lock().deploy_confirmed_at.is_some());
    assert_eq!(cp.devices_configured(), 4, "only the 4 transit borders");

    // A spoofed packet from a stub (not the victim's) dies at its border.
    let agent_node = sim.topo.stub_nodes()[5];
    let reflector = dtcs::netsim::Addr::new(sim.topo.stub_nodes()[9], 1);
    sim.install_app(reflector, Box::new(dtcs::netsim::SinkApp));
    let victim_addr = dtcs::netsim::Addr::new(victim_node, 1);
    sim.schedule(SimTime::from_secs(3), move |s| {
        s.emit_now(
            agent_node,
            dtcs::netsim::PacketBuilder::new(
                victim_addr,
                reflector,
                dtcs::netsim::Proto::TcpSyn,
                TrafficClass::AttackDirect,
            )
            .size(40),
        );
    });
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(
        sim.stats.drops_for_reason(DropReason::SpoofFilter).pkts,
        1,
        "spoofed packet dies at the stub border"
    );
    assert_eq!(
        sim.stats
            .mean_stop_distance(TrafficClass::AttackDirect, DropReason::SpoofFilter),
        Some(1.0),
        "one hop from the agent's AS"
    );
}
