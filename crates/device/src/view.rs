//! Restricted packet view and module environment.
//!
//! Section 4.5 of the paper enumerates what delegated processing must never
//! do: change source/destination addresses (rerouting), change the TTL,
//! increase the packet rate, or increase the traffic volume. [`PacketView`]
//! enforces the header rules **by construction** — modules receive this view
//! instead of the raw packet, and the view simply has no mutating accessors
//! for protected fields; the only mutation it offers is shrinking the
//! payload. Rate/volume rules are enforced by the device's runtime guard
//! (see `device.rs`) and, statically, by the safety verifier (`safety.rs`).

use dtcs_netsim::{Addr, LinkId, NodeId, Packet, Prefix, Proto, SimTime};
use serde::{Deserialize, Serialize};

use crate::owner::OwnerId;

/// Where a packet entered the device's node — the "contextual information"
/// of Sec. 4.2 that anti-spoofing needs ("we can e.g. only prevent source
/// spoofing effectively, if the adaptive device is aware of whether it
/// processes transit traffic … or only traffic from customers of a
/// peripheral ISP").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Emitted by a host on this node.
    Local,
    /// Arrived over a customer (stub downlink) interface; the prefixes are
    /// the address space legitimately originated behind that interface.
    Customer(Vec<Prefix>),
    /// Arrived over a peer/transit interface: third-party traffic.
    Transit,
}

/// A module's window onto one packet.
///
/// Read access to every header field a real middlebox could inspect; write
/// access only to the payload size (shrink-only) — Sec. 4.5's "packet size
/// may only stay the same or become smaller".
pub struct PacketView<'a> {
    pkt: &'a mut Packet,
    /// Bytes removed from the payload by modules so far this visit.
    stripped: u32,
}

impl<'a> PacketView<'a> {
    /// Wrap a packet. Crate-internal: only the device constructs views.
    pub(crate) fn new(pkt: &'a mut Packet) -> Self {
        PacketView { pkt, stripped: 0 }
    }

    /// Public wrapper for benchmarks and harnesses that drive module
    /// graphs directly. The view's restrictions (shrink-only payload,
    /// immutable headers) hold regardless of who constructs it.
    pub fn wrap(pkt: &'a mut Packet) -> Self {
        PacketView::new(pkt)
    }

    /// Claimed source address.
    pub fn src(&self) -> Addr {
        self.pkt.src
    }

    /// Destination address.
    pub fn dst(&self) -> Addr {
        self.pkt.dst
    }

    /// Protocol.
    pub fn proto(&self) -> Proto {
        self.pkt.proto
    }

    /// Wire size in bytes.
    pub fn size(&self) -> u32 {
        self.pkt.size
    }

    /// Remaining TTL (read-only; Sec. 4.5 forbids modification).
    pub fn ttl(&self) -> u8 {
        self.pkt.ttl
    }

    /// Flow identifier.
    pub fn flow(&self) -> u64 {
        self.pkt.flow
    }

    /// The overloadable marking field (read-only inside devices; traceback
    /// baselines that legitimately mark packets are router agents, not
    /// delegated modules).
    pub fn mark(&self) -> u32 {
        self.pkt.mark
    }

    /// Payload correlation tag.
    pub fn payload_tag(&self) -> u64 {
        self.pkt.payload_tag
    }

    /// A stable digest of the invariant header fields, for logging and
    /// SPIE-style backlogs. Uses an FNV-1a mix over src/dst/proto/size/tag.
    pub fn digest(&self) -> u64 {
        digest_packet(self.pkt)
    }

    /// Shrink the packet to `new_size` bytes ("payload deletion",
    /// Sec. 4.2). Growing is impossible: requests larger than the current
    /// size are clamped, never applied.
    pub fn truncate(&mut self, new_size: u32) {
        if new_size < self.pkt.size {
            self.stripped += self.pkt.size - new_size;
            self.pkt.size = new_size;
        }
    }

    /// Bytes stripped so far during this device visit.
    pub fn stripped(&self) -> u32 {
        self.stripped
    }
}

/// Digest of a packet's invariant header fields (FNV-1a).
pub fn digest_packet(pkt: &Packet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for i in 0..8 {
            h ^= (v >> (i * 8)) & 0xFF;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(pkt.src.0 as u64);
    mix(pkt.dst.0 as u64);
    mix(pkt.proto as u64);
    mix(pkt.payload_tag);
    mix(pkt.flow);
    h
}

/// Telemetry event a module may emit (logging, statistics, triggers —
/// footnote 1 of the paper allows "a reasonable amount of additional
/// traffic" for these). Each event is charged against the device's
/// telemetry budget.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum DeviceEvent {
    /// A trigger's condition became true.
    TriggerFired {
        /// Owner whose service fired.
        owner: OwnerId,
        /// User-chosen trigger tag.
        tag: u32,
        /// Observed metric value.
        value: f64,
        /// Node the device is attached to.
        node: NodeId,
        /// Time of firing.
        at: SimTime,
    },
    /// A trigger's condition ceased (relief, Sec. 3.1 third phase).
    TriggerRelieved {
        /// Owner whose service relieved.
        owner: OwnerId,
        /// User-chosen trigger tag.
        tag: u32,
        /// Node the device is attached to.
        node: NodeId,
        /// Time of relief.
        at: SimTime,
    },
    /// A batch of log digests is available for collection.
    LogReady {
        /// Owner whose logger filled.
        owner: OwnerId,
        /// Number of entries buffered.
        entries: usize,
        /// Node the device is attached to.
        node: NodeId,
    },
}

/// Immutable per-node context shared by all modules on a device.
#[derive(Clone, Debug)]
pub struct DeviceContext {
    /// Node the device is attached to.
    pub node: NodeId,
    /// Prefixes originated locally at this node.
    pub local_prefixes: Vec<Prefix>,
    /// Is this node a transit AS (carries third-party traffic)?
    pub is_transit: bool,
}

/// Environment handed to a module for one packet.
pub struct ModuleEnv<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Static device context.
    pub ctx: &'a DeviceContext,
    /// How the packet entered this node.
    pub entry: &'a EntryKind,
    /// Device-computed spoof verdict for the current packet: `true` when
    /// the claimed source could not legitimately be entering this node the
    /// way it did (local emission with a foreign source, or a customer-
    /// side arrival inconsistent with the claimed source's actual route —
    /// Park & Lee route-based filtering). Always `false` for transit
    /// arrivals, which are never judged (Sec. 4.2).
    pub spoof_suspect: bool,
    /// Link the packet arrived on, if any.
    pub from: Option<LinkId>,
    /// Owner whose service graph is executing.
    pub owner: OwnerId,
    /// Telemetry sink; events are budget-checked by the device.
    pub events: &'a mut Vec<DeviceEvent>,
    /// Module (de)activation requests `(graph index, enable)` emitted by
    /// triggers; applied by the graph after the current packet.
    pub activations: &'a mut Vec<(usize, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{NodeId, PacketBuilder, TrafficClass};

    fn pkt() -> Packet {
        PacketBuilder::new(
            Addr::new(NodeId(1), 1),
            Addr::new(NodeId(2), 2),
            Proto::Udp,
            TrafficClass::Background,
        )
        .size(500)
        .build(1, NodeId(1))
    }

    #[test]
    fn truncate_only_shrinks() {
        let mut p = pkt();
        let mut v = PacketView::new(&mut p);
        v.truncate(100);
        assert_eq!(v.size(), 100);
        assert_eq!(v.stripped(), 400);
        v.truncate(1000); // growth attempt: clamped (no-op)
        assert_eq!(v.size(), 100);
        assert_eq!(v.stripped(), 400);
        let _ = v;
        assert_eq!(p.size, 100);
    }

    #[test]
    fn digest_ignores_mutable_fields() {
        let mut a = pkt();
        let mut b = pkt();
        b.ttl = 3;
        b.hops = 9;
        b.mark = 77;
        assert_eq!(digest_packet(&a), digest_packet(&b));
        a.payload_tag = 5;
        assert_ne!(digest_packet(&a), digest_packet(&b));
    }

    #[test]
    fn view_exposes_headers() {
        let mut p = pkt();
        let v = PacketView::new(&mut p);
        assert_eq!(v.src(), Addr::new(NodeId(1), 1));
        assert_eq!(v.dst(), Addr::new(NodeId(2), 2));
        assert_eq!(v.proto(), Proto::Udp);
        assert_eq!(v.ttl(), dtcs_netsim::DEFAULT_TTL);
    }
}
