//! Packets.
//!
//! A packet carries the fields defenses are allowed to inspect (header) plus
//! *ground-truth provenance* used exclusively by the metrics layer. Keeping
//! provenance on the packet lets experiments attribute every delivery and
//! every drop to a traffic class without any global lookup, but defense code
//! must never branch on it — that separation is enforced by convention here
//! and by construction in `dtcs-device`, whose module API only exposes the
//! header view.

use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::node::NodeId;
use crate::time::SimTime;

/// Default initial TTL, mirroring common OS defaults.
pub const DEFAULT_TTL: u8 = 64;

/// Transport/network protocol of a packet, at the granularity defenses and
/// reflectors care about.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Proto {
    /// TCP connection request.
    TcpSyn,
    /// TCP SYN-ACK (what reflectors bounce back at the victim).
    TcpSynAck,
    /// TCP reset (protocol-misuse attacks, Sec. 2.1).
    TcpRst,
    /// Established-connection TCP data.
    TcpData,
    /// Generic UDP datagram.
    Udp,
    /// DNS query (UDP).
    DnsQuery,
    /// DNS response — a classic amplification vector.
    DnsResponse,
    /// ICMP echo request.
    IcmpEcho,
    /// ICMP echo reply.
    IcmpEchoReply,
    /// ICMP destination unreachable (reflector + misuse vector).
    IcmpUnreachable,
    /// ICMP time exceeded (reflector vector).
    IcmpTimeExceeded,
    /// Control-plane message of the simulated management protocols
    /// (TCSP/ISP/pushback). Carried in-band so it competes for bandwidth.
    Control,
}

impl Proto {
    /// Is this one of the reply protocols a reflector emits in response to a
    /// request it received?
    pub fn is_reflected_reply(self) -> bool {
        matches!(
            self,
            Proto::TcpSynAck
                | Proto::TcpRst
                | Proto::DnsResponse
                | Proto::IcmpEchoReply
                | Proto::IcmpUnreachable
                | Proto::IcmpTimeExceeded
        )
    }
}

/// Ground-truth class of a packet, for metrics only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Legitimate client request.
    LegitRequest,
    /// Legitimate server reply.
    LegitReply,
    /// Attack packet sent directly by a DDoS agent.
    AttackDirect,
    /// Attack packet emitted by an innocent reflector in response to a
    /// spoofed request (the agent's spoofed request itself is
    /// `AttackDirect`; the bounce is `AttackReflected`).
    AttackReflected,
    /// Attacker command-and-control (attacker -> master -> agent).
    AttackControl,
    /// Management-plane traffic (TCSP, ISP NMS, pushback messages).
    Management,
    /// Background cross traffic that is neither measured nor attack.
    Background,
}

impl TrafficClass {
    /// Attack traffic (any flavour, including C&C)?
    pub fn is_attack(self) -> bool {
        matches!(
            self,
            TrafficClass::AttackDirect
                | TrafficClass::AttackReflected
                | TrafficClass::AttackControl
        )
    }

    /// Legitimate application traffic whose survival we measure?
    pub fn is_legit(self) -> bool {
        matches!(self, TrafficClass::LegitRequest | TrafficClass::LegitReply)
    }
}

/// Ground truth attached to each packet; read only by stats/metrics.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Provenance {
    /// Node that physically emitted the packet (independent of any spoofed
    /// source address in the header).
    pub origin: NodeId,
    /// Traffic class for attribution.
    pub class: TrafficClass,
}

/// A network packet.
///
/// `size` is the wire size in bytes; payloads are modelled by size and the
/// opaque `payload_tag` (used e.g. to correlate requests with replies),
/// never by actual buffers — the simulator routinely moves 10^7 packets per
/// experiment and must not allocate per packet.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id assigned at emission.
    pub id: u64,
    /// Claimed source address (may be spoofed).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Remaining hops; decremented per router, dropped at zero.
    pub ttl: u8,
    /// Protocol.
    pub proto: Proto,
    /// Wire size in bytes.
    pub size: u32,
    /// Flow identifier (5-tuple surrogate) chosen by the emitting app.
    pub flow: u64,
    /// Writable 32-bit header field (plays the role of the IP identification
    /// field which probabilistic packet marking overloads).
    pub mark: u32,
    /// Opaque payload correlation tag (e.g. request id echoed in the reply).
    pub payload_tag: u64,
    /// Number of links traversed so far; maintained by the simulator and
    /// used for stop-distance / wasted-bandwidth metrics.
    pub hops: u8,
    /// Emission instant, stamped by the simulator; feeds the end-to-end
    /// latency histogram and trace `Deliver` events. Metrics-layer only —
    /// like `provenance`, defense code must not read it (and cannot via
    /// the device header view).
    pub sent_at: SimTime,
    /// Ground truth for metrics. Defense code must not read this.
    pub provenance: Provenance,
}

impl Packet {
    /// True (metrics-level) check: is the source address spoofed, i.e. does
    /// the claimed source not belong to the node that emitted the packet?
    pub fn is_spoofed(&self) -> bool {
        self.src.node() != self.provenance.origin
    }
}

/// Convenience builder so scenario code stays readable.
#[derive(Clone, Copy, Debug)]
pub struct PacketBuilder {
    src: Addr,
    dst: Addr,
    proto: Proto,
    size: u32,
    flow: u64,
    ttl: u8,
    payload_tag: u64,
    class: TrafficClass,
}

impl PacketBuilder {
    /// Start building a packet of the given protocol and class.
    pub fn new(src: Addr, dst: Addr, proto: Proto, class: TrafficClass) -> Self {
        PacketBuilder {
            src,
            dst,
            proto,
            size: 64,
            flow: 0,
            ttl: DEFAULT_TTL,
            payload_tag: 0,
            class,
        }
    }

    /// Set wire size in bytes.
    pub fn size(mut self, size: u32) -> Self {
        self.size = size;
        self
    }

    /// Set the flow id.
    pub fn flow(mut self, flow: u64) -> Self {
        self.flow = flow;
        self
    }

    /// Set the initial TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Set the payload correlation tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.payload_tag = tag;
        self
    }

    /// Finalise; `id` and `origin` are stamped by the emitting context.
    pub fn build(self, id: u64, origin: NodeId) -> Packet {
        Packet {
            id,
            src: self.src,
            dst: self.dst,
            ttl: self.ttl,
            proto: self.proto,
            size: self.size,
            flow: self.flow,
            mark: 0,
            payload_tag: self.payload_tag,
            hops: 0,
            sent_at: SimTime::ZERO,
            provenance: Provenance {
                origin,
                class: self.class,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: Addr, origin: NodeId) -> Packet {
        PacketBuilder::new(
            src,
            Addr::new(NodeId(1), 0),
            Proto::Udp,
            TrafficClass::AttackDirect,
        )
        .build(1, origin)
    }

    #[test]
    fn spoof_detection_uses_ground_truth() {
        let honest = pkt(Addr::new(NodeId(5), 1), NodeId(5));
        assert!(!honest.is_spoofed());
        let spoofed = pkt(Addr::new(NodeId(9), 1), NodeId(5));
        assert!(spoofed.is_spoofed());
    }

    #[test]
    fn reflected_reply_protocols() {
        assert!(Proto::TcpSynAck.is_reflected_reply());
        assert!(Proto::IcmpUnreachable.is_reflected_reply());
        assert!(!Proto::TcpSyn.is_reflected_reply());
        assert!(!Proto::Udp.is_reflected_reply());
    }

    #[test]
    fn class_partitions() {
        for c in [
            TrafficClass::LegitRequest,
            TrafficClass::LegitReply,
            TrafficClass::AttackDirect,
            TrafficClass::AttackReflected,
            TrafficClass::AttackControl,
            TrafficClass::Management,
            TrafficClass::Background,
        ] {
            // No class is both attack and legit.
            assert!(!(c.is_attack() && c.is_legit()));
        }
        assert!(TrafficClass::AttackReflected.is_attack());
        assert!(TrafficClass::LegitReply.is_legit());
    }

    #[test]
    fn builder_defaults() {
        let p = pkt(Addr::new(NodeId(2), 0), NodeId(2));
        assert_eq!(p.ttl, DEFAULT_TTL);
        assert_eq!(p.size, 64);
        assert_eq!(p.hops, 0);
        assert_eq!(p.mark, 0);
    }
}
