//! Declarative service specifications.
//!
//! Network users do not ship code to adaptive devices in this model — they
//! ship *specifications*: serialisable descriptions of module graphs that
//! the device instantiates after the safety verifier approves them ("New
//! service modules for the adaptive device must be checked for security
//! compliance before deployment", Sec. 4.5). The spec layer also contains
//! deliberately-forbidden module kinds (header rewriting, TTL modification,
//! amplification, redirection); they exist so the verifier's rejections are
//! testable end-to-end (experiment E8).

use dtcs_netsim::{Addr, Prefix, Proto, SimDuration};
use serde::{Deserialize, Serialize};

/// Which processing stage a service graph attaches to (Sec. 4.1 / Fig. 6):
/// stage 1 runs on behalf of the *source*-address owner, stage 2 on behalf
/// of the *destination*-address owner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Stage {
    /// Source-owner processing (first stage).
    Src,
    /// Destination-owner processing (second stage).
    Dst,
}

/// A packet predicate. All present conditions must hold (conjunction).
///
/// Besides header fields, rules can match on **payload hashes** (Sec. 4.2:
/// "rules that match traffic by header fields, payload (or payload
/// hashes)…"). In this model a packet's payload identity is its
/// `payload_tag`, so payload-hash rules list the known tags — e.g. the
/// signature hashes of a worm's infection payload.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchExpr {
    /// Source address within this prefix.
    pub src_in: Option<Prefix>,
    /// Destination address within this prefix.
    pub dst_in: Option<Prefix>,
    /// Protocol is one of these (empty = any).
    pub protos: Vec<Proto>,
    /// Size at least this many bytes.
    pub min_size: Option<u32>,
    /// Size at most this many bytes.
    pub max_size: Option<u32>,
    /// Payload hash is one of these (empty = any) — signature matching.
    pub payload_hashes: Vec<u64>,
}

impl MatchExpr {
    /// Match everything.
    pub fn any() -> MatchExpr {
        MatchExpr::default()
    }

    /// Restrict to one protocol.
    pub fn proto(proto: Proto) -> MatchExpr {
        MatchExpr {
            protos: vec![proto],
            ..Default::default()
        }
    }

    /// Restrict to a set of protocols.
    pub fn protos(protos: &[Proto]) -> MatchExpr {
        MatchExpr {
            protos: protos.to_vec(),
            ..Default::default()
        }
    }

    /// Restrict by source prefix.
    pub fn with_src(mut self, p: Prefix) -> MatchExpr {
        self.src_in = Some(p);
        self
    }

    /// Restrict by destination prefix.
    pub fn with_dst(mut self, p: Prefix) -> MatchExpr {
        self.dst_in = Some(p);
        self
    }

    /// Restrict by size window.
    pub fn with_size(mut self, min: Option<u32>, max: Option<u32>) -> MatchExpr {
        self.min_size = min;
        self.max_size = max;
        self
    }

    /// Restrict to known payload hashes (signature matching).
    pub fn with_payload_hashes(mut self, hashes: Vec<u64>) -> MatchExpr {
        self.payload_hashes = hashes;
        self
    }

    /// Evaluate against header fields plus the payload hash.
    pub fn matches_full(
        &self,
        src: Addr,
        dst: Addr,
        proto: Proto,
        size: u32,
        payload_hash: u64,
    ) -> bool {
        if !self.payload_hashes.is_empty() && !self.payload_hashes.contains(&payload_hash) {
            return false;
        }
        self.matches(src, dst, proto, size)
    }

    /// Evaluate against header fields only (payload-hash conditions are
    /// NOT consulted here; use [`MatchExpr::matches_full`] on the packet
    /// path).
    pub fn matches(&self, src: Addr, dst: Addr, proto: Proto, size: u32) -> bool {
        if let Some(p) = self.src_in {
            if !p.contains(src) {
                return false;
            }
        }
        if let Some(p) = self.dst_in {
            if !p.contains(dst) {
                return false;
            }
        }
        if !self.protos.is_empty() && !self.protos.contains(&proto) {
            return false;
        }
        if let Some(m) = self.min_size {
            if size < m {
                return false;
            }
        }
        if let Some(m) = self.max_size {
            if size > m {
                return false;
            }
        }
        true
    }
}

/// First-match filter rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FilterRule {
    /// Predicate.
    pub expr: MatchExpr,
    /// Drop on match? (false = explicitly pass, terminating rule scan).
    pub drop: bool,
}

/// Metric a trigger watches.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TriggerMetric {
    /// Matched packets per second over the trigger window.
    PacketRate,
    /// Matched bytes per second over the trigger window.
    ByteRate,
}

/// What a trigger does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TriggerAction {
    /// Emit a [`crate::view::DeviceEvent::TriggerFired`] to the owner's
    /// contact node.
    Notify,
    /// Additionally enable the (initially disabled) graph module at this
    /// index — "during attacks, triggers can automatically activate
    /// predefined additional configurations" (Sec. 4.2). The module is
    /// disabled again on relief.
    ActivateModule(usize),
}

/// One module in a service graph.
///
/// The last four variants are *structurally unsafe* and exist to be
/// rejected: they model the misuse classes Sec. 4.5 rules out.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModuleSpec {
    /// First-match packet filter (firewall-like, Sec. 4.2).
    Filter {
        /// Rules, evaluated in order; no match = pass.
        rules: Vec<FilterRule>,
    },
    /// Token-bucket rate limiter over matched traffic.
    RateLimit {
        /// Which packets count against the bucket.
        expr: MatchExpr,
        /// Sustained rate in bytes/second.
        rate_bytes_per_sec: f64,
        /// Bucket depth in bytes.
        burst_bytes: u32,
    },
    /// Drop packets whose source is in any listed prefix.
    Blacklist {
        /// Blacklisted source prefixes.
        sources: Vec<Prefix>,
    },
    /// Drop traffic that claims the owner's source addresses while entering
    /// the network somewhere that cannot legitimately originate them
    /// (distributed ingress filtering, Sec. 4.3).
    AntiSpoof,
    /// Strip the payload of matched packets down to a header stub.
    PayloadDelete {
        /// Which packets to strip.
        expr: MatchExpr,
        /// Bytes to keep (header stub size).
        keep_bytes: u32,
    },
    /// Ring-buffer digest logger with sampling.
    Logger {
        /// Ring capacity in entries.
        capacity: usize,
        /// Sample one packet in `sample_one_in` (1 = every packet).
        sample_one_in: u32,
    },
    /// SPIE-style packet-digest backlog for traceback support (Sec. 4.4).
    DigestBacklog {
        /// Length of one digest window.
        window: SimDuration,
        /// Number of windows retained.
        windows: usize,
        /// Bloom filter size in bits per window.
        bits: u32,
        /// Hash functions per insertion.
        hashes: u8,
    },
    /// Threshold trigger over a traffic metric.
    Trigger {
        /// Which packets count toward the metric.
        expr: MatchExpr,
        /// Watched metric.
        metric: TriggerMetric,
        /// Fire when the metric exceeds this value.
        threshold: f64,
        /// Averaging / hysteresis window.
        window: SimDuration,
        /// Action on fire.
        action: TriggerAction,
        /// User tag reported in events.
        tag: u32,
    },
    /// FORBIDDEN: rewrite source/destination addresses (rerouting,
    /// transparent spoofing — Sec. 4.5).
    RewriteHeader {
        /// Attempted new source.
        new_src: Option<Addr>,
        /// Attempted new destination.
        new_dst: Option<Addr>,
    },
    /// FORBIDDEN: modify the TTL field (Sec. 4.5).
    TtlModify {
        /// Attempted TTL delta.
        delta: i16,
    },
    /// FORBIDDEN: grow packets or emit extra copies (amplification,
    /// Sec. 4.5 "the traffic control must not allow the packet rate to
    /// increase").
    Amplify {
        /// Attempted amplification factor.
        factor: u32,
    },
    /// FORBIDDEN: divert matched packets toward a different address
    /// (routing-loop / attack-forwarding hazard, Sec. 4.5).
    Redirect {
        /// Attempted diversion target.
        to: Addr,
    },
}

impl ModuleSpec {
    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ModuleSpec::Filter { .. } => "filter",
            ModuleSpec::RateLimit { .. } => "rate-limit",
            ModuleSpec::Blacklist { .. } => "blacklist",
            ModuleSpec::AntiSpoof => "anti-spoof",
            ModuleSpec::PayloadDelete { .. } => "payload-delete",
            ModuleSpec::Logger { .. } => "logger",
            ModuleSpec::DigestBacklog { .. } => "digest-backlog",
            ModuleSpec::Trigger { .. } => "trigger",
            ModuleSpec::RewriteHeader { .. } => "rewrite-header",
            ModuleSpec::TtlModify { .. } => "ttl-modify",
            ModuleSpec::Amplify { .. } => "amplify",
            ModuleSpec::Redirect { .. } => "redirect",
        }
    }

    /// Number of primitive rules this module contributes to the device's
    /// rule count (the E6 scalability unit).
    pub fn rule_count(&self) -> usize {
        match self {
            ModuleSpec::Filter { rules } => rules.len().max(1),
            ModuleSpec::Blacklist { sources } => sources.len().max(1),
            _ => 1,
        }
    }
}

/// A service graph: modules executed in sequence, each optionally starting
/// disabled (until a trigger activates it).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Human-readable service name (e.g. "ingress-filtering").
    pub name: String,
    /// Modules in execution order.
    pub modules: Vec<GraphNodeSpec>,
}

/// One node in a service graph spec.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphNodeSpec {
    /// Module description.
    pub module: ModuleSpec,
    /// Start enabled? Triggers can flip this at run time.
    pub enabled: bool,
}

impl ServiceSpec {
    /// A service from a plain list of always-on modules.
    pub fn chain(name: &str, modules: Vec<ModuleSpec>) -> ServiceSpec {
        ServiceSpec {
            name: name.to_string(),
            modules: modules
                .into_iter()
                .map(|m| GraphNodeSpec {
                    module: m,
                    enabled: true,
                })
                .collect(),
        }
    }

    /// Total primitive rules (E6 unit).
    pub fn rule_count(&self) -> usize {
        self.modules.iter().map(|m| m.module.rule_count()).sum()
    }

    /// Deterministic content fingerprint: FNV-1a over the spec's canonical
    /// `Debug` rendering (module specs contain `f64` fields, so the struct
    /// cannot derive `Hash`; `Debug` of finite floats is exact and stable).
    /// Devices use it to recognise a *byte-identical* reinstall — the
    /// idempotency key of [`crate::device::DeviceCommand::InstallService`]
    /// is (owner, stage, content hash) — and the NMS reconciliation sweep
    /// compares desired vs. reported hashes.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{:?}", self).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::NodeId;

    #[test]
    fn match_expr_conjunction() {
        let e = MatchExpr::proto(Proto::TcpSyn)
            .with_src(Prefix::of_node(NodeId(1)))
            .with_size(Some(40), Some(100));
        let src = Addr::new(NodeId(1), 1);
        let dst = Addr::new(NodeId(2), 1);
        assert!(e.matches(src, dst, Proto::TcpSyn, 64));
        assert!(!e.matches(src, dst, Proto::Udp, 64));
        assert!(!e.matches(Addr::new(NodeId(3), 1), dst, Proto::TcpSyn, 64));
        assert!(!e.matches(src, dst, Proto::TcpSyn, 200));
        assert!(!e.matches(src, dst, Proto::TcpSyn, 10));
    }

    #[test]
    fn any_matches_everything() {
        let e = MatchExpr::any();
        assert!(e.matches(Addr(0), Addr(u32::MAX), Proto::IcmpTimeExceeded, 1_000_000));
    }

    #[test]
    fn rule_counts() {
        let f = ModuleSpec::Filter {
            rules: vec![
                FilterRule {
                    expr: MatchExpr::any(),
                    drop: true,
                },
                FilterRule {
                    expr: MatchExpr::any(),
                    drop: false,
                },
            ],
        };
        assert_eq!(f.rule_count(), 2);
        assert_eq!(ModuleSpec::AntiSpoof.rule_count(), 1);
        let s = ServiceSpec::chain("x", vec![f, ModuleSpec::AntiSpoof]);
        assert_eq!(s.rule_count(), 3);
    }

    #[test]
    fn specs_serialise() {
        let s = ServiceSpec::chain(
            "fw",
            vec![ModuleSpec::Blacklist {
                sources: vec![Prefix::of_node(NodeId(3))],
            }],
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: ServiceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
