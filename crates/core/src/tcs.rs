//! High-level TCS deployment helpers.
//!
//! Two ways to stand up the paper's defense for a victim:
//!
//! * [`deploy_tcs_static`] — devices pre-attached and pre-configured (the
//!   steady state after a Fig. 5 deployment), optionally dormant until an
//!   activation instant. Used by the sweep experiments (E2/E3/E5) where
//!   control-plane latency is not the quantity under study.
//! * The full control-plane path via
//!   [`dtcs_control::ControlPlane`] + user agents, used by E7.

use std::collections::BTreeMap;

use dtcs_control::CatalogService;
use dtcs_device::{AdaptiveDevice, DeviceCommand, DeviceHandle, OwnerId, Stage};
use dtcs_mitigation::{choose_nodes, Placement};
use dtcs_netsim::{NodeId, Prefix, Proto, SimTime, Simulator};

/// Static TCS deployment parameters.
#[derive(Clone, Debug)]
pub struct TcsStaticConfig {
    /// Fraction of ASes whose ISPs offer the service.
    pub fraction: f64,
    /// Which ASes sign up first.
    pub placement: Placement,
    /// Activate the victim's services at this instant (`SimTime::ZERO` =
    /// proactive, active from the start). Models the paper's "almost
    /// instantly deploy worldwide ingress filtering rules" moment.
    pub activate_at: SimTime,
    /// Install the anti-spoofing service (stage 1, the reflector-attack
    /// killer of Sec. 4.3).
    pub antispoof: bool,
    /// Install a destination-side firewall dropping unsolicited reflected
    /// replies (SYN-ACK / DNS response / ICMP) addressed to the victim.
    pub dst_firewall: bool,
    /// Protocols the destination-side firewall drops. `None` = the
    /// reflected-reply set (the right choice against reflector attacks);
    /// owners pick differently per attack, e.g. `[Udp]` against a UDP
    /// flood.
    pub dst_block_protos: Option<Vec<Proto>>,
    /// Optional destination-side rate limit, bytes/second per device.
    pub dst_rate_limit: Option<f64>,
    /// Placement seed.
    pub seed: u64,
}

impl Default for TcsStaticConfig {
    fn default() -> Self {
        TcsStaticConfig {
            fraction: 1.0,
            placement: Placement::TopDegree,
            activate_at: SimTime::ZERO,
            antispoof: true,
            dst_firewall: true,
            dst_block_protos: None,
            dst_rate_limit: None,
            seed: 1,
        }
    }
}

/// A standing TCS deployment for one owner.
pub struct TcsDeployment {
    /// The owner id used on the devices.
    pub owner: OwnerId,
    /// Nodes carrying a configured device.
    pub nodes: Vec<NodeId>,
    /// Device handles for inspection.
    pub devices: BTreeMap<NodeId, DeviceHandle>,
}

impl TcsDeployment {
    /// Total rules installed (E6 unit).
    pub fn total_rules(&self) -> usize {
        self.devices.values().map(|h| h.lock().rule_count).sum()
    }

    /// Total packets dropped by devices, by any reason.
    pub fn total_device_drops(&self) -> u64 {
        self.devices
            .values()
            .map(|h| h.lock().dropped.values().sum::<u64>())
            .sum()
    }
}

/// The unsolicited reply protocols a reflector bounces at a victim.
pub fn reflected_reply_protos() -> Vec<Proto> {
    vec![
        Proto::TcpSynAck,
        Proto::DnsResponse,
        Proto::IcmpEchoReply,
        Proto::IcmpUnreachable,
        Proto::IcmpTimeExceeded,
        Proto::TcpRst,
    ]
}

/// Stand up a static TCS deployment protecting `victim_prefix`.
///
/// The victim's own AS always participates (its ISP is the first customer
/// of the service), plus `fraction` of the remaining ASes per `placement`.
pub fn deploy_tcs_static(
    sim: &mut Simulator,
    victim_prefix: Prefix,
    cfg: &TcsStaticConfig,
) -> TcsDeployment {
    let owner = OwnerId(0xDD05);
    let victim_node = victim_prefix.first().node();
    let mut nodes = choose_nodes(&sim.topo, cfg.fraction, cfg.placement, cfg.seed);
    if !nodes.contains(&victim_node) {
        nodes.push(victim_node);
    }
    let dormant = cfg.activate_at > SimTime::ZERO;
    let mut devices = BTreeMap::new();
    let mut services: Vec<(Stage, dtcs_device::ServiceSpec)> = Vec::new();
    if cfg.antispoof {
        services.push((Stage::Src, CatalogService::AntiSpoofing.compile()));
    }
    if cfg.dst_firewall {
        services.push((
            Stage::Dst,
            CatalogService::FirewallBlock {
                protos: cfg
                    .dst_block_protos
                    .clone()
                    .unwrap_or_else(reflected_reply_protos),
            }
            .compile(),
        ));
    }
    if let Some(rate) = cfg.dst_rate_limit {
        services.push((
            Stage::Dst,
            CatalogService::RateLimit {
                rate_bytes_per_sec: rate,
                burst_bytes: (rate / 2.0) as u32,
            }
            .compile(),
        ));
    }
    for &node in &nodes {
        let (mut dev, handle) = AdaptiveDevice::new(node, None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner,
            prefixes: vec![victim_prefix],
            contact: victim_node,
        });
        for (stage, spec) in &services {
            let reply = dev.apply(DeviceCommand::InstallService {
                txn: 0,
                lease_until: SimTime::MAX,
                owner,
                stage: *stage,
                spec: spec.clone(),
            });
            debug_assert!(
                matches!(reply, Some(dtcs_device::DeviceReply::InstallOk { .. })),
                "catalog services must verify"
            );
            if dormant {
                dev.apply(DeviceCommand::SetServiceActive {
                    owner,
                    stage: *stage,
                    active: false,
                });
            }
        }
        sim.add_agent(node, Box::new(dev));
        devices.insert(node, handle);
    }
    if dormant {
        // Activation commands arrive over the control plane at
        // `activate_at` (sender: the victim's node, i.e. the user).
        for &node in &nodes {
            for (stage, _) in &services {
                sim.deliver_control(
                    cfg.activate_at,
                    victim_node,
                    node,
                    DeviceCommand::SetServiceActive {
                        owner,
                        stage: *stage,
                        active: true,
                    },
                );
            }
        }
    }
    TcsDeployment {
        owner,
        nodes,
        devices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, DropReason, PacketBuilder, Topology, TrafficClass};

    /// Star: hub 0 (transit), leaves 1..=3. Victim at leaf 1, spoofing
    /// agent at leaf 2.
    fn spoof_scenario(cfg: &TcsStaticConfig) -> (Simulator, TcsDeployment) {
        let topo = Topology::star(3);
        let mut sim = Simulator::new(topo, 1);
        let victim_prefix = Prefix::of_node(NodeId(1));
        let dep = deploy_tcs_static(&mut sim, victim_prefix, cfg);
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        sim.install_app(Addr::new(NodeId(1), 1), Box::new(dtcs_netsim::SinkApp));
        (sim, dep)
    }

    fn spoofed_syn(sim: &mut Simulator, at: SimTime) {
        // Agent at node 2 claims the victim's (node 1) address toward a
        // reflector at node 3.
        let victim_addr = Addr::new(NodeId(1), 1);
        let reflector = Addr::new(NodeId(3), 1);
        sim.schedule(at, move |s| {
            s.emit_now(
                NodeId(2),
                PacketBuilder::new(
                    victim_addr,
                    reflector,
                    Proto::TcpSyn,
                    TrafficClass::AttackDirect,
                )
                .size(40),
            );
        });
    }

    #[test]
    fn proactive_antispoof_kills_spoofed_syn_at_source_uplink() {
        let cfg = TcsStaticConfig::default();
        let (mut sim, dep) = spoof_scenario(&cfg);
        spoofed_syn(&mut sim, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::SpoofFilter).pkts, 1);
        // Full deployment: the agent's own AS carries a device, so the
        // spoofed packet dies before its first hop (distance 0).
        assert_eq!(
            sim.stats
                .mean_stop_distance(TrafficClass::AttackDirect, DropReason::SpoofFilter),
            Some(0.0)
        );
        assert!(dep.total_device_drops() >= 1);
    }

    #[test]
    fn partial_deployment_catches_spoof_at_provider_uplink() {
        // Device only at the hub (and the victim's node): the spoofed SYN
        // from leaf 2 dies after one hop, at the customer uplink.
        let topo = Topology::star(3);
        let mut sim = Simulator::new(topo, 1);
        let victim_prefix = Prefix::of_node(NodeId(1));
        let dep = deploy_tcs_static(
            &mut sim,
            victim_prefix,
            &TcsStaticConfig {
                fraction: 0.01, // top-degree: just the hub
                ..Default::default()
            },
        );
        assert!(dep.nodes.contains(&NodeId(0)));
        assert!(!dep.nodes.contains(&NodeId(2)));
        sim.install_app(Addr::new(NodeId(3), 1), Box::new(dtcs_netsim::SinkApp));
        spoofed_syn(&mut sim, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.stats
                .mean_stop_distance(TrafficClass::AttackDirect, DropReason::SpoofFilter),
            Some(1.0)
        );
    }

    #[test]
    fn dormant_services_activate_on_schedule() {
        let cfg = TcsStaticConfig {
            activate_at: SimTime::from_secs(5),
            ..Default::default()
        };
        let (mut sim, _dep) = spoof_scenario(&cfg);
        // Before activation the spoofed SYN sails through.
        spoofed_syn(&mut sim, SimTime::from_secs(1));
        // After activation it dies.
        spoofed_syn(&mut sim, SimTime::from_secs(6));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.stats.drops_for_reason(DropReason::SpoofFilter).pkts, 1);
        assert_eq!(
            sim.stats.class(TrafficClass::AttackDirect).delivered_pkts,
            1,
            "pre-activation packet reached the reflector"
        );
    }

    #[test]
    fn dst_firewall_blocks_reflected_replies_not_legit_flow() {
        let cfg = TcsStaticConfig::default();
        let (mut sim, _dep) = spoof_scenario(&cfg);
        let victim_addr = Addr::new(NodeId(1), 1);
        // A reflected SYN-ACK (unsolicited) from node 3 toward the victim.
        sim.emit_now(
            NodeId(3),
            PacketBuilder::new(
                Addr::new(NodeId(3), 1),
                victim_addr,
                Proto::TcpSynAck,
                TrafficClass::AttackReflected,
            )
            .size(44),
        );
        // A legit client SYN from node 2 toward the victim.
        sim.emit_now(
            NodeId(2),
            PacketBuilder::new(
                Addr::new(NodeId(2), 1),
                victim_addr,
                Proto::TcpSyn,
                TrafficClass::LegitRequest,
            )
            .size(60),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.drops_for_reason(DropReason::DeviceFilter).pkts, 1);
        assert_eq!(
            sim.stats.class(TrafficClass::LegitRequest).delivered_pkts,
            1
        );
    }

    #[test]
    fn fraction_controls_device_count() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 3);
        let mut sim = Simulator::new(topo, 1);
        let victim_prefix = Prefix::of_node(sim.topo.stub_nodes()[0]);
        let dep = deploy_tcs_static(
            &mut sim,
            victim_prefix,
            &TcsStaticConfig {
                fraction: 0.2,
                ..Default::default()
            },
        );
        assert!(dep.nodes.len() >= 20 && dep.nodes.len() <= 21);
        assert!(dep.total_rules() > 0);
    }
}
