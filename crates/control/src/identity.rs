//! Users, credentials and certificates.
//!
//! The paper binds a network user to the set of IP addresses they own
//! "with digital certificates signed by the TCSP" (Sec. 5.1). We simulate
//! the trust chain with keyed 64-bit tags: a [`Certificate`] is valid iff
//! its tag matches the TCSP key over its contents. This is a stated
//! substitution (DESIGN.md §2) — the protocol logic only ever consumes the
//! valid/invalid bit, so nothing downstream changes if the tag were a real
//! signature.

use dtcs_netsim::{Prefix, SimTime};
use serde::{Deserialize, Serialize};

/// A registered network user.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// SplitMix64-style keyed mixer (NOT cryptographic — simulation stand-in).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed tag over certificate contents.
fn tag(key: u64, user: UserId, prefixes: &[Prefix], expires_at: SimTime) -> u64 {
    let mut h = mix(key ^ 0x7C5);
    h = mix(h ^ user.0);
    for p in prefixes {
        h = mix(h ^ ((p.bits as u64) << 8 | p.len as u64));
    }
    mix(h ^ expires_at.as_nanos())
}

/// A TCSP-issued binding of a user to owned prefixes (Fig. 4's
/// "TCSP certificate").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// The certified user.
    pub user: UserId,
    /// Prefixes the user may control traffic for.
    pub prefixes: Vec<Prefix>,
    /// Expiry instant.
    pub expires_at: SimTime,
    sig: u64,
}

impl Certificate {
    /// Issue a certificate under the TCSP's key.
    pub fn issue(
        key: u64,
        user: UserId,
        prefixes: Vec<Prefix>,
        expires_at: SimTime,
    ) -> Certificate {
        let sig = tag(key, user, &prefixes, expires_at);
        Certificate {
            user,
            prefixes,
            expires_at,
            sig,
        }
    }

    /// Verify signature and freshness against the TCSP key.
    pub fn verify(&self, key: u64, now: SimTime) -> bool {
        now < self.expires_at && self.sig == tag(key, self.user, &self.prefixes, self.expires_at)
    }

    /// Signature check alone, ignoring freshness. Withdrawal uses this:
    /// an owner whose certificate expired mid-flight may still *reduce*
    /// their footprint (tearing filters down is always safe), they just
    /// may no longer extend it — that requires [`Certificate::verify`].
    pub fn authentic(&self, key: u64) -> bool {
        self.sig == tag(key, self.user, &self.prefixes, self.expires_at)
    }

    /// Does this certificate authorise control over `prefix`?
    pub fn covers(&self, prefix: Prefix) -> bool {
        self.prefixes.iter().any(|p| p.covers(prefix))
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dtcs_netsim::NodeId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any single-field tampering of a certificate breaks verification,
        /// and verification never succeeds under a different key.
        #[test]
        fn tampering_always_breaks_verification(
            key in any::<u64>(),
            other_key in any::<u64>(),
            user in any::<u64>(),
            node in 0usize..1000,
            expiry_s in 1u64..1_000_000,
            tweak in 1u64..u64::MAX,
        ) {
            let cert = Certificate::issue(
                key,
                UserId(user),
                vec![Prefix::of_node(NodeId(node))],
                SimTime::from_secs(expiry_s),
            );
            let now = SimTime::ZERO;
            prop_assert!(cert.verify(key, now));
            if other_key != key {
                prop_assert!(!cert.verify(other_key, now));
            }
            // Tamper the user.
            let mut t = cert.clone();
            t.user = UserId(user.wrapping_add(tweak));
            prop_assert!(!t.verify(key, now));
            // Tamper the prefixes.
            let mut t = cert.clone();
            t.prefixes.push(Prefix::of_node(NodeId((node + 1) % 1001)));
            prop_assert!(!t.verify(key, now));
            // Tamper the expiry (extending one's own certificate).
            let mut t = cert.clone();
            t.expires_at = SimTime::from_secs(expiry_s + tweak % 1_000_000 + 1);
            prop_assert!(!t.verify(key, now));
            // Expired certificates never verify.
            prop_assert!(!cert.verify(key, SimTime::from_secs(expiry_s)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::NodeId;

    fn cert(key: u64) -> Certificate {
        Certificate::issue(
            key,
            UserId(7),
            vec![Prefix::of_node(NodeId(3))],
            SimTime::from_secs(1000),
        )
    }

    #[test]
    fn valid_certificate_verifies() {
        let c = cert(111);
        assert!(c.verify(111, SimTime::from_secs(1)));
    }

    #[test]
    fn wrong_key_fails() {
        let c = cert(111);
        assert!(!c.verify(222, SimTime::from_secs(1)));
    }

    #[test]
    fn expiry_enforced() {
        let c = cert(111);
        assert!(!c.verify(111, SimTime::from_secs(1000)));
        assert!(!c.verify(111, SimTime::from_secs(2000)));
    }

    #[test]
    fn authentic_ignores_expiry_but_not_forgery() {
        let c = cert(111);
        assert!(c.authentic(111), "fresh certificate is authentic");
        assert!(
            c.authentic(111),
            "still authentic past expiry (withdrawal path)"
        );
        assert!(!c.authentic(222), "wrong key is never authentic");
        let mut t = c.clone();
        t.expires_at = SimTime::from_secs(9999);
        assert!(!t.authentic(111), "tampered expiry breaks the signature");
    }

    #[test]
    fn tampered_prefixes_fail() {
        let mut c = cert(111);
        c.prefixes.push(Prefix::of_node(NodeId(9)));
        assert!(!c.verify(111, SimTime::from_secs(1)));
    }

    #[test]
    fn covers_checks_containment() {
        let c = cert(111);
        assert!(c.covers(Prefix::of_node(NodeId(3))));
        assert!(c.covers(Prefix::host(dtcs_netsim::Addr::new(NodeId(3), 5))));
        assert!(!c.covers(Prefix::of_node(NodeId(4))));
    }
}
