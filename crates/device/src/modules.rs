//! Runtime packet-processing modules.
//!
//! Each verified [`ModuleSpec`] is instantiated
//! into a [`Module`]. Modules see only the restricted
//! [`PacketView`] plus a [`ModuleEnv`] and decide
//! pass/drop; anything else they want to do (telemetry, trigger
//! activations) goes through the environment and is budget-checked by the
//! device.

use dtcs_netsim::{DropReason, Prefix, SimDuration, SimTime};

use crate::spec::{FilterRule, MatchExpr, ModuleSpec, TriggerAction, TriggerMetric};
use crate::support::{Bloom, LogEntry, RingLog, TokenBucket, WindowRate};
#[cfg(test)]
use crate::view::EntryKind;
use crate::view::{DeviceEvent, ModuleEnv, PacketView};

/// Pass/drop decision from one module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleAction {
    /// Continue through the graph.
    Pass,
    /// Drop the packet with this reason.
    Drop(DropReason),
}

/// A runtime packet-processing module.
pub trait Module: Send {
    /// Stable kind name.
    fn kind(&self) -> &'static str;

    /// Process one packet.
    fn process(&mut self, env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction;

    /// Traceback query hook: did this module record `digest` within
    /// `[from, to]`? `None` when the module keeps no backlog.
    fn query_digest(&self, _digest: u64, _from: SimTime, _to: SimTime) -> Option<bool> {
        None
    }

    /// Drain buffered log entries, if this module keeps a log.
    fn drain_log(&mut self) -> Option<Vec<LogEntry>> {
        None
    }
}

/// Instantiate a verified spec. Panics on the forbidden variants — the
/// device never calls this without a successful
/// [`SafetyVerifier`](crate::safety::SafetyVerifier) pass, and hitting one
/// here would mean the verifier gate was bypassed.
pub fn instantiate(spec: &ModuleSpec) -> Box<dyn Module> {
    match spec {
        ModuleSpec::Filter { rules } => Box::new(FilterModule {
            rules: rules.clone(),
        }),
        ModuleSpec::RateLimit {
            expr,
            rate_bytes_per_sec,
            burst_bytes,
        } => Box::new(RateLimitModule {
            expr: expr.clone(),
            bucket: TokenBucket::new(*rate_bytes_per_sec, *burst_bytes),
        }),
        ModuleSpec::Blacklist { sources } => Box::new(BlacklistModule {
            sources: sources.clone(),
        }),
        ModuleSpec::AntiSpoof => Box::new(AntiSpoofModule),
        ModuleSpec::PayloadDelete { expr, keep_bytes } => Box::new(PayloadDeleteModule {
            expr: expr.clone(),
            keep_bytes: *keep_bytes,
        }),
        ModuleSpec::Logger {
            capacity,
            sample_one_in,
        } => Box::new(LoggerModule {
            ring: RingLog::new(*capacity),
            sample_one_in: (*sample_one_in).max(1),
            seen: 0,
            notified_at_total: 0,
            capacity: *capacity,
        }),
        ModuleSpec::DigestBacklog {
            window,
            windows,
            bits,
            hashes,
        } => Box::new(DigestBacklogModule::new(*window, *windows, *bits, *hashes)),
        ModuleSpec::Trigger {
            expr,
            metric,
            threshold,
            window,
            action,
            tag,
        } => Box::new(TriggerModule {
            expr: expr.clone(),
            metric: *metric,
            threshold: *threshold,
            rate: WindowRate::new(*window),
            action: *action,
            tag: *tag,
            fired: false,
        }),
        ModuleSpec::RewriteHeader { .. }
        | ModuleSpec::TtlModify { .. }
        | ModuleSpec::Amplify { .. }
        | ModuleSpec::Redirect { .. } => {
            panic!(
                "BUG: forbidden module '{}' reached instantiation — safety verifier bypassed",
                spec.kind()
            )
        }
    }
}

/// First-match filter.
pub struct FilterModule {
    rules: Vec<FilterRule>,
}

impl Module for FilterModule {
    fn kind(&self) -> &'static str {
        "filter"
    }

    fn process(&mut self, _env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        for rule in &self.rules {
            if rule.expr.matches_full(
                view.src(),
                view.dst(),
                view.proto(),
                view.size(),
                view.payload_tag(),
            ) {
                return if rule.drop {
                    ModuleAction::Drop(DropReason::DeviceFilter)
                } else {
                    ModuleAction::Pass
                };
            }
        }
        ModuleAction::Pass
    }
}

/// Token-bucket rate limiter.
pub struct RateLimitModule {
    expr: MatchExpr,
    bucket: TokenBucket,
}

impl Module for RateLimitModule {
    fn kind(&self) -> &'static str {
        "rate-limit"
    }

    fn process(&mut self, env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        if !self.expr.matches_full(
            view.src(),
            view.dst(),
            view.proto(),
            view.size(),
            view.payload_tag(),
        ) {
            return ModuleAction::Pass;
        }
        if self.bucket.take(env.now, view.size()) {
            ModuleAction::Pass
        } else {
            ModuleAction::Drop(DropReason::DeviceRateLimit)
        }
    }
}

/// Source blacklist.
pub struct BlacklistModule {
    sources: Vec<Prefix>,
}

impl Module for BlacklistModule {
    fn kind(&self) -> &'static str {
        "blacklist"
    }

    fn process(&mut self, _env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        let src = view.src();
        if self.sources.iter().any(|p| p.contains(src)) {
            ModuleAction::Drop(DropReason::Blacklist)
        } else {
            ModuleAction::Pass
        }
    }
}

/// Distributed anti-spoofing (the paper's flagship application, Sec. 4.3).
///
/// Runs in a *source-owner* (stage 1) graph, so every packet it sees claims
/// one of the owner's addresses as source. The spoof verdict itself is
/// computed by the device (which has the routing context the module must
/// not own): local emissions must carry a local source, customer-side
/// arrivals must be route-consistent with the claimed source (Park & Lee
/// route-based filtering, the mechanism the paper cites in Sec. 3.2), and
/// transit arrivals are never judged (Sec. 4.2) — the device nearer the
/// true edge is responsible.
pub struct AntiSpoofModule;

impl Module for AntiSpoofModule {
    fn kind(&self) -> &'static str {
        "anti-spoof"
    }

    fn process(&mut self, env: &mut ModuleEnv<'_>, _view: &mut PacketView<'_>) -> ModuleAction {
        if env.spoof_suspect {
            ModuleAction::Drop(DropReason::SpoofFilter)
        } else {
            ModuleAction::Pass
        }
    }
}

/// Payload stripper.
pub struct PayloadDeleteModule {
    expr: MatchExpr,
    keep_bytes: u32,
}

impl Module for PayloadDeleteModule {
    fn kind(&self) -> &'static str {
        "payload-delete"
    }

    fn process(&mut self, _env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        if self.expr.matches_full(
            view.src(),
            view.dst(),
            view.proto(),
            view.size(),
            view.payload_tag(),
        ) {
            view.truncate(self.keep_bytes);
        }
        ModuleAction::Pass
    }
}

/// Sampling digest logger.
pub struct LoggerModule {
    ring: RingLog,
    sample_one_in: u32,
    seen: u64,
    notified_at_total: u64,
    capacity: usize,
}

impl Module for LoggerModule {
    fn kind(&self) -> &'static str {
        "logger"
    }

    fn process(&mut self, env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        self.seen += 1;
        if self.seen.is_multiple_of(self.sample_one_in as u64) {
            self.ring.push(LogEntry {
                at: env.now,
                digest: view.digest(),
            });
            // Notify the owner each time a full ring's worth accumulated.
            if self.ring.total() >= self.notified_at_total + self.capacity as u64 {
                self.notified_at_total = self.ring.total();
                env.events.push(DeviceEvent::LogReady {
                    owner: env.owner,
                    entries: self.ring.len(),
                    node: env.ctx.node,
                });
            }
        }
        ModuleAction::Pass
    }

    fn drain_log(&mut self) -> Option<Vec<LogEntry>> {
        let snap = self.ring.snapshot();
        self.ring = RingLog::new(self.capacity);
        Some(snap)
    }
}

/// SPIE-style rotating digest backlog.
pub struct DigestBacklogModule {
    window: SimDuration,
    blooms: Vec<(SimTime, Bloom)>,
    windows: usize,
    bits: u32,
    hashes: u8,
    current_start: SimTime,
}

impl DigestBacklogModule {
    fn new(window: SimDuration, windows: usize, bits: u32, hashes: u8) -> Self {
        DigestBacklogModule {
            window: SimDuration(window.as_nanos().max(1)),
            blooms: Vec::new(),
            windows: windows.max(1),
            bits,
            hashes,
            current_start: SimTime::ZERO,
        }
    }

    fn rotate_to(&mut self, now: SimTime) {
        let w = self.window.as_nanos();
        let start = SimTime((now.as_nanos() / w) * w);
        if self.blooms.is_empty() || start > self.current_start {
            self.current_start = start;
            self.blooms
                .push((start, Bloom::new(self.bits, self.hashes)));
            while self.blooms.len() > self.windows {
                self.blooms.remove(0);
            }
        }
    }
}

impl Module for DigestBacklogModule {
    fn kind(&self) -> &'static str {
        "digest-backlog"
    }

    fn process(&mut self, env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        self.rotate_to(env.now);
        let digest = view.digest();
        if let Some((_, bloom)) = self.blooms.last_mut() {
            bloom.insert(digest);
        }
        ModuleAction::Pass
    }

    fn query_digest(&self, digest: u64, from: SimTime, to: SimTime) -> Option<bool> {
        let hit = self.blooms.iter().any(|(start, bloom)| {
            let end = *start + self.window;
            *start <= to && end >= from && bloom.contains(digest)
        });
        Some(hit)
    }
}

/// Threshold trigger with hysteresis via window rates.
pub struct TriggerModule {
    expr: MatchExpr,
    metric: TriggerMetric,
    threshold: f64,
    rate: WindowRate,
    action: TriggerAction,
    tag: u32,
    fired: bool,
}

impl Module for TriggerModule {
    fn kind(&self) -> &'static str {
        "trigger"
    }

    fn process(&mut self, env: &mut ModuleEnv<'_>, view: &mut PacketView<'_>) -> ModuleAction {
        let matched = self.expr.matches_full(
            view.src(),
            view.dst(),
            view.proto(),
            view.size(),
            view.payload_tag(),
        );
        let amount = if matched {
            match self.metric {
                TriggerMetric::PacketRate => 1.0,
                TriggerMetric::ByteRate => view.size() as f64,
            }
        } else {
            0.0
        };
        if let Some((rate, gap)) = self.rate.record(env.now, amount) {
            // Evaluate the completed window's rate, and — when empty
            // windows followed it — the subsequent zero rate, so a burst
            // produces both its firing and its relief.
            let evals: [Option<f64>; 2] = [Some(rate), if gap { Some(0.0) } else { None }];
            for rate in evals.into_iter().flatten() {
                if rate > self.threshold && !self.fired {
                    self.fired = true;
                    env.events.push(DeviceEvent::TriggerFired {
                        owner: env.owner,
                        tag: self.tag,
                        value: rate,
                        node: env.ctx.node,
                        at: env.now,
                    });
                    if let TriggerAction::ActivateModule(idx) = self.action {
                        env.activations.push((idx, true));
                    }
                } else if rate <= self.threshold && self.fired {
                    self.fired = false;
                    env.events.push(DeviceEvent::TriggerRelieved {
                        owner: env.owner,
                        tag: self.tag,
                        node: env.ctx.node,
                        at: env.now,
                    });
                    if let TriggerAction::ActivateModule(idx) = self.action {
                        env.activations.push((idx, false));
                    }
                }
            }
        }
        ModuleAction::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::OwnerId;
    use crate::view::DeviceContext;
    use dtcs_netsim::{Addr, NodeId, Packet, PacketBuilder, Proto, TrafficClass};

    fn mk_pkt(src: Addr, dst: Addr, proto: Proto, size: u32) -> Packet {
        PacketBuilder::new(src, dst, proto, TrafficClass::Background)
            .size(size)
            .build(1, src.node())
    }

    fn ctx(node: NodeId) -> DeviceContext {
        DeviceContext {
            node,
            local_prefixes: vec![Prefix::of_node(node)],
            is_transit: false,
        }
    }

    struct EnvBits {
        events: Vec<DeviceEvent>,
        activations: Vec<(usize, bool)>,
        ctx: DeviceContext,
        entry: EntryKind,
        spoof_suspect: bool,
    }

    impl EnvBits {
        fn new(node: NodeId, entry: EntryKind) -> Self {
            EnvBits {
                events: Vec::new(),
                activations: Vec::new(),
                ctx: ctx(node),
                entry,
                spoof_suspect: false,
            }
        }

        fn env(&mut self, now: SimTime) -> ModuleEnv<'_> {
            ModuleEnv {
                now,
                ctx: &self.ctx,
                entry: &self.entry,
                spoof_suspect: self.spoof_suspect,
                from: None,
                owner: OwnerId(1),
                events: &mut self.events,
                activations: &mut self.activations,
            }
        }
    }

    #[test]
    fn filter_first_match_semantics() {
        let allow_then_drop = vec![
            FilterRule {
                expr: MatchExpr::proto(Proto::DnsQuery),
                drop: false,
            },
            FilterRule {
                expr: MatchExpr::any(),
                drop: true,
            },
        ];
        let mut m = FilterModule {
            rules: allow_then_drop,
        };
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        let mut dns = mk_pkt(Addr(1), Addr(2), Proto::DnsQuery, 60);
        let mut view = PacketView::new(&mut dns);
        assert_eq!(
            m.process(&mut bits.env(SimTime::ZERO), &mut view),
            ModuleAction::Pass
        );
        let mut udp = mk_pkt(Addr(1), Addr(2), Proto::Udp, 60);
        let mut view = PacketView::new(&mut udp);
        assert_eq!(
            m.process(&mut bits.env(SimTime::ZERO), &mut view),
            ModuleAction::Drop(DropReason::DeviceFilter)
        );
    }

    #[test]
    fn rate_limit_enforces_rate() {
        let mut m = RateLimitModule {
            expr: MatchExpr::any(),
            bucket: TokenBucket::new(100.0, 100),
        };
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        let mut passed = 0;
        for i in 0..20 {
            let now = SimTime::from_millis(i * 10);
            let mut p = mk_pkt(Addr(1), Addr(2), Proto::Udp, 50);
            let mut v = PacketView::new(&mut p);
            if m.process(&mut bits.env(now), &mut v) == ModuleAction::Pass {
                passed += 1;
            }
        }
        // 0.2 s at 100 B/s plus 100 B burst = 120 B => 2 x 50 B packets
        // (plus perhaps a refill catch) — far fewer than 20.
        assert!((2..=4).contains(&passed), "passed={passed}");
    }

    #[test]
    fn antispoof_follows_device_verdict() {
        let mut m = AntiSpoofModule;
        let node = NodeId(5);
        let victim_src = Addr::new(NodeId(77), 1); // claimed source: victim

        // Device judged the packet spoofed: drop.
        let mut bits = EnvBits::new(node, EntryKind::Local);
        bits.spoof_suspect = true;
        let mut p = mk_pkt(victim_src, Addr(1), Proto::TcpSyn, 40);
        let mut v = PacketView::new(&mut p);
        assert_eq!(
            m.process(&mut bits.env(SimTime::ZERO), &mut v),
            ModuleAction::Drop(DropReason::SpoofFilter)
        );

        // Device judged it consistent: pass.
        bits.spoof_suspect = false;
        let mut p = mk_pkt(Addr::new(node, 1), Addr(1), Proto::TcpSyn, 40);
        let mut v = PacketView::new(&mut p);
        assert_eq!(
            m.process(&mut bits.env(SimTime::ZERO), &mut v),
            ModuleAction::Pass
        );
    }

    #[test]
    fn payload_delete_shrinks_only_matches() {
        let mut m = PayloadDeleteModule {
            expr: MatchExpr::proto(Proto::Udp),
            keep_bytes: 40,
        };
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        let mut p = mk_pkt(Addr(1), Addr(2), Proto::Udp, 1000);
        let mut v = PacketView::new(&mut p);
        m.process(&mut bits.env(SimTime::ZERO), &mut v);
        let _ = v;
        assert_eq!(p.size, 40);
        let mut q = mk_pkt(Addr(1), Addr(2), Proto::TcpData, 1000);
        let mut v = PacketView::new(&mut q);
        m.process(&mut bits.env(SimTime::ZERO), &mut v);
        let _ = v;
        assert_eq!(q.size, 1000);
    }

    #[test]
    fn logger_samples_and_notifies() {
        let mut m = LoggerModule {
            ring: RingLog::new(4),
            sample_one_in: 2,
            seen: 0,
            notified_at_total: 0,
            capacity: 4,
        };
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        for i in 0..16u64 {
            let mut p = mk_pkt(Addr(1), Addr(2), Proto::Udp, 100);
            p.payload_tag = i;
            let mut v = PacketView::new(&mut p);
            m.process(&mut bits.env(SimTime(i)), &mut v);
        }
        // 16 seen, every 2nd sampled = 8 logged; ring keeps 4.
        assert_eq!(m.ring.len(), 4);
        assert_eq!(m.ring.total(), 8);
        let notifications = bits
            .events
            .iter()
            .filter(|e| matches!(e, DeviceEvent::LogReady { .. }))
            .count();
        assert_eq!(notifications, 2, "one per filled ring");
        let log = m.drain_log().unwrap();
        assert_eq!(log.len(), 4);
        assert!(m.drain_log().unwrap().is_empty());
    }

    #[test]
    fn backlog_answers_time_scoped_queries() {
        let spec = ModuleSpec::DigestBacklog {
            window: SimDuration::from_secs(1),
            windows: 4,
            bits: 1 << 14,
            hashes: 4,
        };
        let mut m = instantiate(&spec);
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        let mut p = mk_pkt(Addr(1), Addr(2), Proto::Udp, 100);
        p.payload_tag = 99;
        let digest = crate::view::digest_packet(&p);
        let mut v = PacketView::new(&mut p);
        m.process(&mut bits.env(SimTime::from_millis(500)), &mut v);
        // Query overlapping the insertion window: hit.
        assert_eq!(
            m.query_digest(digest, SimTime::ZERO, SimTime::from_secs(1)),
            Some(true)
        );
        // Unknown digest: miss (with high probability).
        assert_eq!(
            m.query_digest(0xDEAD_BEEF, SimTime::ZERO, SimTime::from_secs(1)),
            Some(false)
        );
    }

    #[test]
    fn backlog_expires_old_windows() {
        let spec = ModuleSpec::DigestBacklog {
            window: SimDuration::from_secs(1),
            windows: 2,
            bits: 1 << 12,
            hashes: 3,
        };
        let mut m = instantiate(&spec);
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        let mut p = mk_pkt(Addr(1), Addr(2), Proto::Udp, 100);
        let digest = crate::view::digest_packet(&p);
        let mut v = PacketView::new(&mut p);
        m.process(&mut bits.env(SimTime::from_millis(100)), &mut v);
        // Push enough later windows to expire the first.
        for s in [2u64, 3, 4] {
            let mut q = mk_pkt(Addr(3), Addr(4), Proto::Udp, 100);
            q.payload_tag = s;
            let mut v = PacketView::new(&mut q);
            m.process(&mut bits.env(SimTime::from_secs(s)), &mut v);
        }
        assert_eq!(
            m.query_digest(digest, SimTime::ZERO, SimTime::from_secs(1)),
            Some(false),
            "window containing the digest has been rotated out"
        );
    }

    #[test]
    fn trigger_fires_and_relieves() {
        let spec = ModuleSpec::Trigger {
            expr: MatchExpr::proto(Proto::TcpSynAck),
            metric: TriggerMetric::PacketRate,
            threshold: 50.0,
            window: SimDuration::from_millis(100),
            action: TriggerAction::ActivateModule(2),
            tag: 7,
        };
        let mut m = instantiate(&spec);
        let mut bits = EnvBits::new(NodeId(0), EntryKind::Transit);
        // 100 ms of 100 SYN-ACKs => 1000 pps >> 50 threshold.
        for i in 0..100u64 {
            let mut p = mk_pkt(Addr(1), Addr(2), Proto::TcpSynAck, 60);
            let mut v = PacketView::new(&mut p);
            m.process(&mut bits.env(SimTime(i * 1_000_000)), &mut v);
        }
        // First packet of the next window completes the hot window: fires.
        let mut p = mk_pkt(Addr(1), Addr(2), Proto::TcpSynAck, 60);
        let mut v = PacketView::new(&mut p);
        m.process(&mut bits.env(SimTime::from_millis(100)), &mut v);
        assert!(bits
            .events
            .iter()
            .any(|e| matches!(e, DeviceEvent::TriggerFired { tag: 7, .. })));
        assert_eq!(bits.activations, vec![(2, true)]);

        // Silence, then one packet much later: window rate 0 => relief.
        bits.activations.clear();
        let mut p = mk_pkt(Addr(1), Addr(2), Proto::TcpSynAck, 60);
        let mut v = PacketView::new(&mut p);
        m.process(&mut bits.env(SimTime::from_secs(10)), &mut v);
        assert!(bits
            .events
            .iter()
            .any(|e| matches!(e, DeviceEvent::TriggerRelieved { tag: 7, .. })));
        assert_eq!(bits.activations, vec![(2, false)]);
    }

    #[test]
    #[should_panic(expected = "safety verifier bypassed")]
    fn forbidden_spec_panics_at_instantiation() {
        let _ = instantiate(&ModuleSpec::Amplify { factor: 10 });
    }
}
