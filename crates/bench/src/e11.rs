//! E11 — Worm-driven botnet growth and time-to-mitigation (Sec. 2.1).
//!
//! The paper motivates the threat with worm outbreaks that "build up a
//! huge amplifying network of several ten thousand hosts in a short time".
//! Here the SI recruitment model drives agent activation: the experiment
//! reports the growth curve (time to 10/50/90% of the susceptible
//! population per infection rate β) and, downstream, how quickly the
//! ramping attack overwhelms the victim vs how quickly a TCS anomaly
//! trigger could have reacted.

use rayon::prelude::*;
use serde::Serialize;

use dtcs::attack::{ReflectorAttack, ReflectorAttackConfig, SiModel};
use dtcs::netsim::{SimDuration, SimTime, Simulator, Topology};

use crate::util::{f, fopt, Report, Table};

#[derive(Serialize, Clone)]
struct GrowthRow {
    beta: f64,
    susceptible: usize,
    t10_s: f64,
    t50_s: f64,
    t90_s: f64,
}

#[derive(Serialize, Clone)]
struct RampRow {
    beta: f64,
    agents: usize,
    time_to_overload_s: Option<f64>,
    victim_overloaded: u64,
}

/// Run E11.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e11",
        "Botnet recruitment dynamics and attack ramp",
        "Sec. 2.1",
    );

    // Growth curves (pure model; cheap, so always full).
    let betas = [0.2, 0.5, 1.0, 2.0];
    let s = 10_000;
    let mut t = Table::new(
        "SI recruitment: time to reach fraction of susceptible pool (10k hosts)",
        &["beta", "t_10%", "t_50%", "t_90%"],
    );
    for &beta in &betas {
        let m = SiModel {
            susceptible: s,
            seed: 2,
            beta,
            dt: SimDuration::from_millis(50),
        };
        let row = GrowthRow {
            beta,
            susceptible: s,
            t10_s: m.time_to_fraction(0.1).as_secs_f64(),
            t50_s: m.time_to_fraction(0.5).as_secs_f64(),
            t90_s: m.time_to_fraction(0.9).as_secs_f64(),
        };
        t.push(
            vec![f(beta), f(row.t10_s), f(row.t50_s), f(row.t90_s)],
            &row,
        );
    }
    report.table(t);

    // Ramping attack: time until the victim first overloads.
    let betas: Vec<f64> = if quick {
        vec![0.3, 1.0]
    } else {
        vec![0.2, 0.4, 0.8, 1.6]
    };
    let rows: Vec<RampRow> = betas
        .par_iter()
        .map(|&beta| {
            let n = if quick { 120 } else { 200 };
            let agents = if quick { 60 } else { 120 };
            let topo = Topology::barabasi_albert(n, 2, 0.1, 44);
            let mut sim = Simulator::new(topo, 44);
            let victim_node = sim.topo.stub_nodes()[0];
            let dur = if quick { 25u64 } else { 40 };
            let attack = ReflectorAttack::install(
                &mut sim,
                victim_node,
                &ReflectorAttackConfig {
                    n_agents: agents,
                    n_reflectors: agents,
                    agent_rate_pps: 40.0,
                    start_at: SimTime::from_secs(2),
                    stop_at: SimTime::from_secs(dur - 2),
                    victim_capacity_pps: 500.0,
                    si_recruitment: Some(SiModel {
                        susceptible: agents,
                        seed: 2,
                        beta,
                        dt: SimDuration::from_millis(100),
                    }),
                    seed: 44,
                    ..Default::default()
                },
            );
            sim.run_until(SimTime::from_secs(dur));
            crate::util::enforce_run_invariants("e11", &sim.stats);
            let v = attack.victim_stats.lock();
            RampRow {
                beta,
                agents,
                time_to_overload_s: v.first_overload_nanos.map(|ns| (ns as f64 / 1e9) - 2.0),
                victim_overloaded: v.overloaded,
            }
        })
        .collect();
    let mut t = Table::new(
        "ramping reflector attack: time from outbreak to victim overload",
        &["beta", "agents", "t_overload_s", "overload_pkts"],
    );
    for r in &rows {
        t.push(
            vec![
                f(r.beta),
                r.agents.to_string(),
                fopt(r.time_to_overload_s),
                r.victim_overloaded.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Faster worms compress the victim's reaction window to seconds — compare E10's \
         trigger reaction (sub-second) and E7's deployment latency (tens of ms): the TCS \
         control loop is faster than every recruitment curve measured here, which is the \
         operational requirement for reactive deployment (Sec. 4.3).",
    );
    report
}
