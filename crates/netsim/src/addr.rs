//! Addressing.
//!
//! The simulator models the Internet at autonomous-system (AS) granularity:
//! every simulator node is an AS/site, and each node owns a /16-like block of
//! the 32-bit address space: the high 16 bits select the node, the low 16
//! bits a host within it. This keeps the `Addr -> node` mapping a shift,
//! which matters on the per-packet hot path, while still allowing tens of
//! thousands of distinct hosts per site for workload realism.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Number of low bits addressing a host within a node.
pub const HOST_BITS: u32 = 16;

/// A 32-bit network address (IPv4-like).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    /// Address of host `host` inside node `node`.
    pub fn new(node: NodeId, host: u16) -> Addr {
        Addr(((node.0 as u32) << HOST_BITS) | host as u32)
    }

    /// The node (AS/site) this address belongs to.
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> HOST_BITS) as usize)
    }

    /// The host index within the owning node.
    pub fn host(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node().0, self.host())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A CIDR-style prefix over the 32-bit address space.
///
/// Ownership of traffic in the paper is defined per registered prefix; the
/// control plane hands these out and the adaptive devices match on them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network bits; bits below `len` are zero (canonical form).
    pub bits: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Prefix {
    /// The whole address space (`0.0.0.0/0`).
    pub const ALL: Prefix = Prefix { bits: 0, len: 0 };

    /// Build a canonical prefix, masking off host bits.
    pub fn new(bits: u32, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length must be <= 32");
        Prefix {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// The prefix covering every address of `node` (a /16 in this model).
    pub fn of_node(node: NodeId) -> Prefix {
        Prefix::new((node.0 as u32) << HOST_BITS, (32 - HOST_BITS) as u8)
    }

    /// The /32 prefix for one address.
    pub fn host(addr: Addr) -> Prefix {
        Prefix::new(addr.0, 32)
    }

    /// Netmask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Does this prefix contain `addr`?
    pub fn contains(self, addr: Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.bits
    }

    /// Does this prefix contain all of `other`?
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && (other.bits & Self::mask(self.len)) == self.bits
    }

    /// First address in the prefix.
    pub fn first(self) -> Addr {
        Addr(self.bits)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}/{}", self.bits, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        let a = Addr::new(NodeId(42), 7);
        assert_eq!(a.node(), NodeId(42));
        assert_eq!(a.host(), 7);
    }

    #[test]
    fn node_prefix_contains_all_its_hosts() {
        let p = Prefix::of_node(NodeId(9));
        assert!(p.contains(Addr::new(NodeId(9), 0)));
        assert!(p.contains(Addr::new(NodeId(9), u16::MAX)));
        assert!(!p.contains(Addr::new(NodeId(10), 0)));
        assert_eq!(p.len, 16);
    }

    #[test]
    fn prefix_canonicalises() {
        let p = Prefix::new(0xFFFF_FFFF, 8);
        assert_eq!(p.bits, 0xFF00_0000);
    }

    #[test]
    fn covers_is_reflexive_and_ordered() {
        let wide = Prefix::new(0x0A00_0000, 8);
        let narrow = Prefix::new(0x0A0B_0000, 16);
        assert!(wide.covers(wide));
        assert!(wide.covers(narrow));
        assert!(!narrow.covers(wide));
        assert!(Prefix::ALL.covers(narrow));
    }

    #[test]
    fn host_prefix_matches_exactly_one() {
        let a = Addr::new(NodeId(3), 4);
        let p = Prefix::host(a);
        assert!(p.contains(a));
        assert!(!p.contains(Addr::new(NodeId(3), 5)));
    }

    #[test]
    fn mask_edges() {
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(32), u32::MAX);
        assert_eq!(Prefix::mask(16), 0xFFFF_0000);
    }
}
