//! Flight-recorder ↔ counter reconciliation: with full (unsampled)
//! control tracing, folding the recorded event stream must reproduce
//! every `cp_*` channel counter in [`dtcs_netsim::Stats`] and every
//! protocol-layer counter in [`dtcs_control::CpStats`] *exactly*. The
//! trace is not a best-effort log — it is a second, independent account
//! of the same run, and the two books must balance.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use dtcs_control::{
    partition_by_provider, CatalogService, ControlPlane, ControlPlaneConfig, DeployScope,
    InternetNumberAuthority, UserId,
};
use dtcs_netsim::{
    CpFlightRecorder, CpTraceEvent, CpVerdict, FaultConfig, FaultPlane, Outage, Partition, Prefix,
    SimDuration, SimTime, Simulator, Topology,
};

/// Event-stream fold mirroring the counter registry: one bucket per
/// counter the recorder claims to account for.
#[derive(Debug, Default, PartialEq, Eq)]
struct Folded {
    sends: u64,
    drops: u64,
    outage_drops: u64,
    partition_drops: u64,
    dups: u64,
    jittered: u64,
    crashes: u64,
    retry_fires: u64,
    give_ups: u64,
    dup_requests: u64,
    dup_responses: u64,
    partial_confirms: u64,
    sweeps: u64,
    reinstalls: u64,
    lease_renewals: u64,
    lease_expirations: u64,
    withdrawals: u64,
    withdraw_removes: u64,
    reconcile_removals: u64,
    expired_deploys: u64,
}

fn fold(rec: &CpFlightRecorder) -> Folded {
    let mut f = Folded::default();
    for ev in rec.events() {
        match ev {
            CpTraceEvent::Send { .. } => f.sends += 1,
            CpTraceEvent::Verdict { verdict, .. } => match verdict {
                CpVerdict::Drop => f.drops += 1,
                CpVerdict::Outage { .. } => f.outage_drops += 1,
                CpVerdict::Partition { .. } => f.partition_drops += 1,
                CpVerdict::Deliver {
                    jitter_ns,
                    dup_extra_ns,
                    ..
                } => {
                    if *jitter_ns > 0 {
                        f.jittered += 1;
                    }
                    if dup_extra_ns.is_some() {
                        f.dups += 1;
                    }
                }
            },
            CpTraceEvent::DedupHit { response, .. } => {
                if *response {
                    f.dup_responses += 1;
                } else {
                    f.dup_requests += 1;
                }
            }
            CpTraceEvent::RetryFire { .. } => f.retry_fires += 1,
            CpTraceEvent::RetryGaveUp { .. } => f.give_ups += 1,
            CpTraceEvent::State { state, .. } => match *state {
                "partial_confirm" => f.partial_confirms += 1,
                "reinstall" => f.reinstalls += 1,
                "renew" => f.lease_renewals += 1,
                "desired_expired" => f.lease_expirations += 1,
                "withdraw_fanout" => f.withdrawals += 1,
                "device_removed" => f.withdraw_removes += 1,
                "remove_orphan" => f.reconcile_removals += 1,
                "cert_expired" => f.expired_deploys += 1,
                _ => {}
            },
            CpTraceEvent::Sweep { .. } => f.sweeps += 1,
            CpTraceEvent::Crash { .. } => f.crashes += 1,
            CpTraceEvent::RetrySchedule { .. }
            | CpTraceEvent::RetryStale { .. }
            | CpTraceEvent::Terminal { .. } => {}
        }
    }
    f
}

/// One traced run's full yield: the exported JSONL, the folded trace,
/// and the expected fold rebuilt from the counters. Fold equality is
/// only meaningful at sampling multiplier 1 (full trace).
struct TracedRun {
    jsonl: String,
    folded: Folded,
    expected: Folded,
}

/// Run a register → deploy → renew → withdraw scenario under the given
/// fault schedule with tracing at sampling multiplier `mult`. Three
/// users exercise every counter: one keeps renewing, one withdraws
/// mid-run, one presents an expired certificate; a partition window
/// cuts TCSP → first-NMS traffic.
fn run_traced(seed: u64, drop: f64, dup: f64, jitter_ms: u64, crash: bool, mult: u64) -> TracedRun {
    let topo = Topology::transit_stub_multihomed(2, 4, 0.2, 7);
    let mut sim = Simulator::new(topo, 3);
    let stubs = sim.topo.stub_nodes();
    let mut authority = InternetNumberAuthority::new();
    let prefixes: Vec<Prefix> = stubs.iter().map(|&n| Prefix::of_node(n)).collect();
    authority.allocate(prefixes[0], UserId(0xAA01));
    authority.allocate(prefixes[1], UserId(0xAA02));
    authority.allocate(prefixes[2], UserId(0xAA03));
    let isps = partition_by_provider(&sim);
    let tcsp_node = sim.topo.transit_nodes()[0];
    let authority_node = sim.topo.transit_nodes()[1];
    let first_nms = isps[0].nms_node;
    let mut cp = ControlPlane::install_with(
        &mut sim,
        authority,
        0x5EC,
        tcsp_node,
        authority_node,
        isps,
        ControlPlaneConfig {
            reconcile_every: Some(SimDuration::from_secs(2)),
            leases: Some((SimDuration::from_secs(3), SimDuration::from_secs(1))),
            sweep_removals: true,
            // Short credential lifetime: desired state expires late in
            // the run (lease_expirations) and the delayed third deploy
            // is rejected as stale (expired_deploys).
            cert_lifetime: Some(SimDuration::from_secs(6)),
        },
    );
    // User 1: deploys and stays; renewals run until the credential dies.
    cp.add_user(
        &mut sim,
        stubs[0],
        vec![prefixes[0]],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(100),
        false,
    );
    // User 2: withdraws at t = 4 s (tracked, retried, fanned-in).
    cp.add_user_withdrawing(
        &mut sim,
        stubs[1],
        vec![prefixes[1]],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(150),
        SimTime::from_secs(4),
        false,
        |a| a,
    );
    // User 3: holds its deploy until after the certificate expired.
    cp.add_user_with(
        &mut sim,
        stubs[2],
        vec![prefixes[2]],
        CatalogService::AntiSpoofing,
        DeployScope::AllManaged,
        SimTime::from_millis(200),
        false,
        |a| a.with_deploy_delay(SimDuration::from_secs(7)),
    );
    let outages = if crash {
        vec![Outage {
            node: stubs[3],
            from: SimTime::from_secs(5),
            until: SimTime::from_millis(5200),
            crash: true,
        }]
    } else {
        Vec::new()
    };
    sim.install_fault_plane(FaultPlane::new(FaultConfig {
        seed,
        drop_prob: drop,
        dup_prob: dup,
        jitter_max: SimDuration::from_millis(jitter_ms),
        outages,
        partitions: vec![Partition {
            src: vec![tcsp_node],
            dst: vec![first_nms],
            from: SimTime::from_millis(300),
            until: SimTime::from_millis(1100),
        }],
    }));

    let rec = Arc::new(Mutex::new(CpFlightRecorder::new(1 << 20)));
    sim.set_cp_trace_sink(Box::new(rec.clone()), mult);
    sim.run_until(SimTime::from_secs(30));
    sim.take_cp_trace_sink();

    let guard = rec.lock().expect("recorder mutex");
    assert_eq!(guard.evicted(), 0, "capacity must hold the whole run");
    let jsonl = guard.export_jsonl_string();
    let folded = fold(&guard);

    let cs = cp.cp_stats.lock().clone();
    let expected = Folded {
        sends: sim.stats.cp_msgs,
        drops: sim.stats.cp_fault_dropped,
        outage_drops: sim.stats.cp_outage_dropped,
        partition_drops: sim.stats.cp_partition_dropped,
        dups: sim.stats.cp_fault_duplicated,
        jittered: sim.stats.cp_fault_jittered,
        crashes: sim.stats.node_crashes,
        retry_fires: cs.retransmits,
        give_ups: cs.give_ups,
        dup_requests: cs.dup_requests,
        dup_responses: cs.dup_responses,
        partial_confirms: cs.partial_confirms,
        sweeps: cs.reconcile_sweeps,
        reinstalls: cs.reconcile_reinstalls,
        lease_renewals: cs.lease_renewals,
        lease_expirations: cs.lease_expirations,
        withdrawals: cs.withdrawals,
        withdraw_removes: cs.withdraw_removes,
        reconcile_removals: cs.reconcile_removals,
        expired_deploys: cs.expired_deploys,
    };
    TracedRun {
        jsonl,
        folded,
        expected,
    }
}

fn run_and_fold(seed: u64, drop: f64, dup: f64, jitter_ms: u64, crash: bool) -> (Folded, Folded) {
    let r = run_traced(seed, drop, dup, jitter_ms, crash, 1);
    (r.folded, r.expected)
}

#[test]
fn crash_run_trace_reconciles_and_is_busy() {
    // Deterministic anchor: a lossy run with a device crash exercises
    // every bucket the proptest folds — and the books still balance.
    let (folded, expected) = run_and_fold(42, 0.20, 0.10, 20, true);
    assert_eq!(folded, expected);
    assert!(folded.sends > 0);
    assert!(folded.drops > 0, "20% loss must drop something");
    assert!(folded.crashes == 1, "the scheduled crash must be recorded");
    assert!(folded.sweeps > 0, "reconcile sweeps ran");
    assert!(
        folded.partition_drops > 0,
        "the partition window must cut TCSP→NMS traffic"
    );
    assert!(folded.lease_renewals > 0, "renewal rounds ran");
    assert!(
        folded.lease_expirations > 0,
        "the 6 s certificate must expire desired state"
    );
    assert_eq!(folded.withdrawals, 1, "user 2 withdrew once");
    assert!(folded.withdraw_removes > 0, "devices confirmed removals");
    assert!(
        folded.expired_deploys > 0,
        "user 3's stale deploy must be rejected and counted"
    );
}

#[test]
fn cp_trace_jsonl_is_byte_identical_across_runs_and_covers_new_kinds() {
    // Same seed → byte-for-byte identical JSONL, including every event
    // kind this PR added to the wire schema.
    let a = run_traced(42, 0.20, 0.10, 20, true, 1);
    let b = run_traced(42, 0.20, 0.10, 20, true, 1);
    assert!(!a.jsonl.is_empty());
    assert_eq!(
        a.jsonl, b.jsonl,
        "fixed seed must reproduce the JSONL byte-for-byte"
    );
    for needle in [
        "\"outcome\":\"partition\"",
        "\"state\":\"renew\"",
        "\"state\":\"desired_expired\"",
        "\"state\":\"withdraw_fanout\"",
        "\"state\":\"device_removed\"",
        "\"state\":\"cert_expired\"",
        "\"outcome\":\"withdrawn\"",
        "\"outcome\":\"renewed\"",
        "\"outcome\":\"expired\"",
    ] {
        assert!(a.jsonl.contains(needle), "trace must contain {needle}");
    }
}

#[test]
fn sampled_cp_trace_is_subset_of_full() {
    // A sampled trace (every 3rd keyed transaction) of the same seeded
    // run must be a strict, line-exact subset of the full trace — the
    // new withdraw/renew/partition kinds sample like everything else.
    let full = run_traced(42, 0.20, 0.10, 20, true, 1);
    let sampled = run_traced(42, 0.20, 0.10, 20, true, 3);
    let full_lines: std::collections::HashSet<&str> = full.jsonl.lines().collect();
    let sampled_lines: Vec<&str> = sampled.jsonl.lines().collect();
    assert!(!sampled_lines.is_empty());
    assert!(sampled_lines.len() < full.jsonl.lines().count());
    for line in sampled_lines {
        assert!(
            full_lines.contains(line),
            "sampled event missing from full trace: {line}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite (3): folding the full trace reproduces every channel
    /// (`cp_*`) and protocol (`CpStats`) counter exactly, across random
    /// fault schedules — nothing is double-recorded, nothing is missed.
    #[test]
    fn cp_trace_reconciles_with_cpstats_exactly(
        seed in 0u64..10_000,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.30,
        jitter_ms in 0u64..40,
        crash_sel in 0u8..2,
    ) {
        let (folded, expected) = run_and_fold(seed, drop, dup, jitter_ms, crash_sel == 1);
        prop_assert_eq!(folded, expected);
    }
}
