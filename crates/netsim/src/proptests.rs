//! Property-based tests for the engine's invariants that every experiment
//! rides on:
//!
//! * the timing wheel must pop events in *exactly* the order the
//!   `(time, seq)` binary heap it replaced would have (DESIGN.md §6.2);
//! * incremental route repair plus warm oracle eviction must be
//!   answer-for-answer identical to a cold `Routing::compute` and a fresh
//!   walk at every step of any link-flap schedule (DESIGN.md §6.3);
//! * a full (unsampled) lifecycle trace must reconcile *exactly* with the
//!   [`crate::stats::Stats`] counters: one `Deliver` per delivery, one
//!   `LinkDrop`/`ModuleVerdict` per counted drop, bucket by bucket
//!   (DESIGN.md §6.4).

#![cfg(test)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use rand::Rng;

use crate::node::{LinkId, NodeId};
use crate::oracle::RouteOracle;
use crate::rng::seeded;
use crate::routing::Routing;
use crate::topology::Topology;
use crate::wheel::TimingWheel;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::addr::Addr;
use crate::agent::{AgentCtx, NodeAgent, Verdict};
use crate::packet::{Packet, PacketBuilder, Proto, TrafficClass};
use crate::sim::Simulator;
use crate::stats::DropReason;
use crate::trace::FlightRecorder;

/// Test agent dropping one protocol (a stand-in for any filtering module).
struct BlockProto(Proto);

impl NodeAgent for BlockProto {
    fn name(&self) -> &'static str {
        "block-proto"
    }
    fn on_packet(
        &mut self,
        _ctx: &mut AgentCtx<'_>,
        pkt: &mut Packet,
        _from: Option<LinkId>,
    ) -> Verdict {
        if pkt.proto == self.0 {
            Verdict::Drop(DropReason::DeviceFilter)
        } else {
            Verdict::Forward
        }
    }
}

/// Reference scheduler: the exact `(time, seq)` min-ordering the old
/// `BinaryHeap<EventEntry>` implemented.
#[derive(Default)]
struct RefHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl RefHeap {
    fn push(&mut self, time: u64, seq: u64) {
        self.heap.push(Reverse((time, seq)));
    }

    fn pop_next(&mut self, limit: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(&Reverse((t, _))) if t <= limit => {
                let Reverse(key) = self.heap.pop().unwrap();
                Some(key)
            }
            _ => None,
        }
    }
}

/// Time offsets mixing same-tick bursts (0), near-uniform spacing (the
/// steady workload the wheel is tuned for) and far jumps that force
/// multi-level cascades.
fn offset_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => Just(0u64),                 // same-tick burst
        8 => 1u64..20_000,               // per-hop delays / timers
        2 => 20_000u64..5_000_000,       // coarse timers
        1 => 5_000_000u64..(1u64 << 40), // idle gaps across cascade levels
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Batch workload: push a random multiset of times (with bursts of
    /// identical ticks), then drain. Pop order must equal the reference
    /// heap's exactly, including seq tie-breaks within a tick.
    #[test]
    fn wheel_drains_in_heap_order(
        offsets in proptest::collection::vec(offset_strategy(), 1..400),
    ) {
        let mut wheel = TimingWheel::new();
        let mut heap = RefHeap::default();
        let mut t = 0u64;
        for (seq, &off) in offsets.iter().enumerate() {
            // Random walk keeps times non-decreasing only on average;
            // revisit earlier ticks by alternating small and zero offsets.
            t = t.wrapping_add(off) % (1u64 << 41);
            wheel.push(t, seq as u64, ());
            heap.push(t, seq as u64);
        }
        loop {
            let expect = heap.pop_next(u64::MAX);
            let got = wheel.pop_next(u64::MAX).map(|e| (e.time, e.seq));
            prop_assert_eq!(got, expect);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Interleaved workload shaped like the simulator's run loop: pops
    /// (some bounded by a `run_until`-style limit) alternate with pushes
    /// whose times are offsets from the last popped instant — exactly the
    /// "handler schedules relative to now" pattern. The wheel and the
    /// reference heap must agree on every single answer.
    #[test]
    fn wheel_matches_heap_under_interleaved_push_pop(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => offset_strategy().prop_map(Some),  // push now+offset
                2 => Just(None),                        // unbounded pop
                1 => (1u64..100_000).prop_map(|w| Some(u64::MAX - w)), // bounded pop marker
            ],
            1..300,
        ),
    ) {
        let mut wheel = TimingWheel::new();
        let mut heap = RefHeap::default();
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            match op {
                Some(x) if x > u64::MAX - 100_000 => {
                    // Bounded pop: limit a little past `now`. Per the
                    // run_until contract, a `None` answer advances the
                    // clock to the limit (the wheel may have cascaded up
                    // to it); a `Some` advances it to the popped time.
                    let limit = now + (u64::MAX - x);
                    let expect = heap.pop_next(limit);
                    let got = wheel.pop_next(limit).map(|e| (e.time, e.seq));
                    prop_assert_eq!(got, expect);
                    now = match got {
                        Some((t, _)) => t,
                        None => limit,
                    };
                }
                Some(off) => {
                    let t = now.saturating_add(off);
                    wheel.push(t, seq, ());
                    heap.push(t, seq);
                    seq += 1;
                }
                None => {
                    let expect = heap.pop_next(u64::MAX);
                    let got = wheel.pop_next(u64::MAX).map(|e| (e.time, e.seq));
                    prop_assert_eq!(got, expect);
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
        }
        // Drain the remainder; orders must stay identical to the end.
        loop {
            let expect = heap.pop_next(u64::MAX);
            let got = wheel.pop_next(u64::MAX).map(|e| (e.time, e.seq));
            prop_assert_eq!(got, expect);
            if got.is_none() {
                break;
            }
        }
    }

    /// Link-flap churn: random schedules where each step flips one to
    /// three links *in the same tick* (consecutive deltas with no
    /// recompute or query between them) and then fires mid-epoch queries
    /// at randomly chosen filtering nodes. Asserts, at every step:
    ///
    /// * the incrementally spliced tables equal a cold
    ///   [`Routing::compute`] on the flipped topology bit for bit
    ///   (next-hop, distance, cost and stamp planes);
    /// * every warm [`RouteOracle`] — including ones that last synced many
    ///   epochs ago and must now absorb a multi-delta window, and ones
    ///   that hit the delta-history fallback — answers exactly like a
    ///   fresh walk of the cold tables.
    #[test]
    fn flap_schedule_keeps_tables_and_warm_oracles_exact(
        topo_seed in 0u64..10_000,
        ops in proptest::collection::vec(0u64..3, 2..8),
    ) {
        let mut topo = Topology::barabasi_albert(26, 2, 0.1, topo_seed);
        let n = topo.n();
        let n_links = topo.links.len();
        let mut routing = Routing::compute(&topo);
        let mut oracles: Vec<RouteOracle> =
            (0..n).map(|i| RouteOracle::new(NodeId(i))).collect();
        let mut rng = seeded(topo_seed ^ 0xF1A9);
        for (i, &op) in ops.iter().enumerate() {
            // 1..=3 flips in one tick; links may repeat (down then up).
            for _ in 0..=op {
                let l = LinkId(rng.gen_range(0..n_links));
                topo.links[l.0].up = !topo.links[l.0].up;
                routing.apply_link_flip(&topo, l);
            }
            let cold = Routing::compute(&topo);
            prop_assert!(routing.tables_match(&cold), "step {}: tables diverged", i);
            // Mid-epoch queries: only the queried oracles sync; the rest
            // fall further behind and exercise wider windows next time.
            for _q in 0..60 {
                let src = NodeId(rng.gen_range(0..n));
                let dst = NodeId(rng.gen_range(0..n));
                let at = rng.gen_range(0..n);
                let want = cold.enters_via(&topo, src, dst, NodeId(at));
                let got = oracles[at].enters_via(&routing, &topo, src, dst);
                prop_assert_eq!(
                    got, want,
                    "step {} src={:?} dst={:?} at={}", i, src, dst, at
                );
            }
        }
    }

    /// Drop/delivery reconciliation: with full (1-in-1) sampling and a
    /// ring large enough to avoid eviction, the trace must contain exactly
    /// one `Deliver` event per counted delivery and exactly one drop event
    /// per counted drop, matching [`crate::stats::Stats::drops`] bucket by
    /// `(class, reason)` bucket — over workloads mixing deliveries, module
    /// drops, TTL expiries, unroutable packets and queue overflows.
    #[test]
    fn full_trace_reconciles_with_stats_exactly(
        topo_seed in 0u64..5_000,
        n_pkts in 20usize..120,
        squeeze in 0u64..2,
    ) {
        let mut topo = Topology::barabasi_albert(24, 2, 0.1, topo_seed);
        if squeeze == 1 {
            // Tiny queues force QueueOverflow (LinkDrop) events.
            for l in &mut topo.links {
                l.queue_limit_bytes = 600;
            }
        }
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let n = 24usize;
        let mut sim = Simulator::new(topo, topo_seed ^ 0x51E0);
        let rec = Arc::new(Mutex::new(FlightRecorder::new(1 << 18)));
        sim.set_trace_sink(Box::new(rec.clone()), 1);
        sim.add_agent(NodeId(1), Box::new(BlockProto(Proto::TcpSyn)));
        let dst = Addr::new(NodeId(1), 1);
        sim.install_app(dst, Box::new(crate::app::SinkApp));
        let mut rng = seeded(topo_seed ^ 0xD0C5);
        for i in 0..n_pkts {
            let src = NodeId(rng.gen_range(0..n));
            let (to, proto, ttl, class) = match i % 5 {
                0 => (dst, Proto::TcpSyn, 64, TrafficClass::AttackDirect),
                1 => (Addr::new(lonely, 1), Proto::Udp, 64, TrafficClass::Background),
                2 => (dst, Proto::Udp, 2, TrafficClass::Background),
                // An address with no app: NoListener at the destination.
                3 => (Addr::new(NodeId(2), 9), Proto::Udp, 64, TrafficClass::Background),
                _ => (dst, Proto::Udp, 64, TrafficClass::LegitRequest),
            };
            sim.emit_now(
                src,
                PacketBuilder::new(Addr::new(src, 1), to, proto, class)
                    .ttl(ttl)
                    .size(400)
                    .flow(i as u64),
            );
        }
        sim.run_to_idle();
        sim.stats.check_conservation().unwrap();
        let rec = rec.lock().unwrap();
        prop_assert_eq!(rec.evicted(), 0, "ring too small for exact reconciliation");
        let mut traced_drops: HashMap<(TrafficClass, DropReason), u64> = HashMap::new();
        let mut traced_delivers = 0u64;
        let mut traced_emits = 0u64;
        for ev in rec.events() {
            match ev {
                crate::trace::TraceEvent::Deliver { .. } => traced_delivers += 1,
                crate::trace::TraceEvent::Emit { .. } => traced_emits += 1,
                _ => {
                    if let Some(bucket) = ev.drop_bucket() {
                        *traced_drops.entry(bucket).or_default() += 1;
                    }
                }
            }
        }
        let sent: u64 = sim.stats.per_class.iter().map(|c| c.sent_pkts).sum();
        let delivered: u64 = sim.stats.per_class.iter().map(|c| c.delivered_pkts).sum();
        prop_assert_eq!(traced_emits, sent);
        prop_assert_eq!(traced_delivers, delivered);
        // Every stats bucket matches the trace count, and vice versa.
        for (bucket, agg) in &sim.stats.drops {
            prop_assert_eq!(
                traced_drops.get(bucket).copied().unwrap_or(0),
                agg.pkts,
                "bucket {:?} traced != counted", bucket
            );
        }
        for (bucket, cnt) in &traced_drops {
            prop_assert_eq!(
                sim.stats.drops.get(bucket).map(|a| a.pkts).unwrap_or(0),
                *cnt,
                "trace bucket {:?} has no matching stats", bucket
            );
        }
    }

    /// A bounded pop that answers `None` must leave the wheel able to
    /// accept pushes at any time ≥ the bound (the `run_until` contract:
    /// the wheel never advances past the limit).
    #[test]
    fn bounded_none_preserves_pushability(
        far in (1u64 << 20)..(1u64 << 45),
        limit_frac in 0.0f64..1.0,
        later in 0u64..1_000_000,
    ) {
        let mut wheel = TimingWheel::new();
        wheel.push(far, 0, ());
        let limit = (far as f64 * limit_frac) as u64;
        if limit < far {
            prop_assert!(wheel.pop_next(limit).is_none());
            // Pushing anywhere in [limit, far] must still be legal and
            // ordered before the far event.
            let t = limit.saturating_add(later).min(far);
            wheel.push(t, 1, ());
            let first = wheel.pop_next(u64::MAX).unwrap();
            if t < far {
                prop_assert_eq!((first.time, first.seq), (t, 1));
            } else {
                // Same tick: seq 0 was pushed first and must win.
                prop_assert_eq!((first.time, first.seq), (far, 0));
            }
        }
    }
}

// --- Stats::merge shard algebra (DESIGN.md §6.6) -------------------------
//
// The sweep engine folds per-shard `Stats` with `Stats::merge` under an
// arbitrary work-stealing schedule, so the operation must form a
// commutative monoid: any merge order, any grouping, must produce one
// identical aggregate, and `Stats::default()` must be a true identity.

use crate::stats::{Stats, ALL_CLASSES, ALL_DROP_REASONS};
use crate::time::{SimDuration, SimTime};

/// Raw material for one randomized `Stats`: per-class counter bumps,
/// drop-bucket bumps, histogram samples (independent queue-delay /
/// end-to-end-latency / hop-count streams), engine scalars,
/// control-plane fault counters, fluid-layer counters, and optional
/// watched-series deliveries (node, bucket index, bytes).
type StatsRaw = (
    Vec<(usize, u64, u64, u64)>,
    Vec<(usize, usize, u64, u64, u64)>,
    Vec<(u64, u64, u64)>,
    (u64, u64, u64, u64, u64, u64),
    (u64, u64, u64, u64, u64, u64, u64),
    (u64, u64, u64, u64, u64),
    Option<Vec<(usize, u64, u32)>>,
);

fn stats_from(raw: StatsRaw) -> Stats {
    let (classes, drops, samples, scalars, control, fluid, series) = raw;
    let mut s = Stats::new();
    for (ci, sent, delivered, bytes) in classes {
        let c = &mut s.per_class[ci % ALL_CLASSES.len()];
        c.sent_pkts += sent;
        c.sent_bytes += bytes;
        c.delivered_pkts += delivered;
        c.delivered_bytes += bytes / 2;
        c.dropped_pkts += sent / 3;
        c.dropped_bytes += bytes / 3;
        c.delivered_hops += delivered.wrapping_mul(3) % (1 << 20);
        c.delivered_byte_hops += (bytes / 2).wrapping_mul(4) % (1 << 30);
        c.dropped_byte_hops += (bytes / 3).wrapping_mul(5) % (1 << 30);
    }
    for (ci, ri, pkts, bytes, mean_hops) in drops {
        let key = (
            ALL_CLASSES[ci % ALL_CLASSES.len()],
            ALL_DROP_REASONS[ri % ALL_DROP_REASONS.len()],
        );
        let agg = s.drops.entry(key).or_default();
        agg.pkts += pkts;
        agg.bytes += bytes;
        agg.hops_sum += pkts.saturating_mul(mean_hops);
    }
    for (q, e2e, hops) in samples {
        // Independent streams per histogram: a merge bug confined to one
        // of the three can no longer hide behind correlated samples.
        s.hist.queue_delay_ns.record(q);
        s.hist.e2e_latency_ns.record(e2e);
        s.hist.hop_count.record(hops % 32);
    }
    let (events, clamped, flips, full_recomputes, slot_hwm, len_hwm) = scalars;
    s.events = events;
    s.past_events_clamped = clamped;
    s.route_link_flips = flips;
    s.route_full_recomputes = full_recomputes.min(flips);
    s.route_trees_recomputed = flips * 2;
    s.wheel_slot_occupancy_hwm = slot_hwm;
    s.wheel_len_hwm = len_hwm;
    s.wheel_cascade_moves = events / 7;
    let (cp, dropped, duplicated, jittered, outage, partition, crashes) = control;
    s.cp_msgs = cp;
    s.cp_fault_dropped = dropped.min(cp);
    s.cp_fault_duplicated = duplicated.min(cp);
    s.cp_fault_jittered = jittered.min(cp);
    s.cp_outage_dropped = outage.min(cp);
    s.cp_partition_dropped = partition.min(cp);
    s.node_crashes = crashes;
    let (aggs, ticks, recomputes, invalidations, conversions) = fluid;
    s.fluid_aggregates = aggs;
    s.fluid_ticks = ticks;
    s.fluid_recomputes = recomputes;
    s.fluid_epoch_invalidations = invalidations.min(recomputes);
    s.fluid_boundary_conversions = conversions.min(aggs);
    if let Some(deliveries) = series {
        for (node, bucket_idx, bytes) in deliveries {
            let node = NodeId(node % 5);
            // All generated series share one bucket width (merging
            // different clock resolutions is a contract violation).
            s.watch(node, SimDuration::from_millis(100));
            let pkt = PacketBuilder::new(
                Addr::new(NodeId(0), 0),
                Addr::new(node, 0),
                Proto::Udp,
                TrafficClass::LegitReply,
            )
            .size(bytes)
            .build(1, NodeId(0));
            s.record_delivered(
                SimTime::from_millis((bucket_idx % 4) * 100 + 50),
                node,
                &pkt,
            );
        }
    }
    s
}

fn arb_stats() -> impl Strategy<Value = Stats> {
    (
        proptest::collection::vec(
            (0usize..7, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
            0..8,
        ),
        proptest::collection::vec(
            (
                0usize..7,
                0usize..15,
                0u64..10_000,
                0u64..1_000_000,
                0u64..64,
            ),
            0..8,
        ),
        proptest::collection::vec((0u64..1_000_000_000, 0u64..1_000_000_000, 0u64..64), 0..16),
        (
            0u64..1_000_000,
            0u64..100,
            0u64..1_000,
            0u64..1_000,
            0u64..10_000,
            0u64..100_000,
        ),
        (
            0u64..10_000,
            0u64..10_000,
            0u64..10_000,
            0u64..10_000,
            0u64..10_000,
            0u64..10_000,
            0u64..100,
        ),
        (
            0u64..10_000,
            0u64..100_000,
            0u64..10_000,
            0u64..1_000,
            0u64..1_000,
        ),
        proptest::option::of(proptest::collection::vec(
            (0usize..5, 0u64..4, 1u32..100_000),
            0..6,
        )),
    )
        .prop_map(stats_from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// merge(a, b) == merge(b, a) — shard arrival order cannot matter.
    #[test]
    fn stats_merge_commutes(a in arb_stats(), b in arb_stats()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — shard grouping cannot matter.
    #[test]
    fn stats_merge_associates(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// `Stats::default()` is a two-sided identity for merge.
    #[test]
    fn stats_merge_default_is_identity(a in arb_stats()) {
        let mut l = a.clone();
        l.merge(&Stats::default());
        prop_assert_eq!(&l, &a);
        let mut r = Stats::default();
        r.merge(&a);
        prop_assert_eq!(&r, &a);
    }
}
