//! Outcome metrics: the serialisable rows the experiment harness prints.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dtcs_netsim::{DropReason, Stats, TrafficClass};

/// One scheme's outcome under one scenario — the unit row of experiments
/// E2/E4 (and, with different fields populated, most other experiments).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutcomeRow {
    /// Scheme label.
    pub scheme: String,
    /// Mean success ratio of legitimate clients of the victim.
    pub legit_success: f64,
    /// Mean success ratio of third-party clients using reflector-hosted
    /// services (collateral-damage metric).
    pub collateral_success: f64,
    /// Attack packets delivered anywhere / attack packets sent (both
    /// direct and reflected flavours).
    pub attack_delivered_ratio: f64,
    /// Reflected attack packets that reached the victim.
    pub reflected_delivered_to_victim: u64,
    /// Packets the victim host turned away for lack of capacity.
    pub victim_overloaded: u64,
    /// Attack packets the victim host absorbed (capacity consumed).
    pub victim_attack_absorbed: u64,
    /// Bandwidth consumed by attack traffic, byte·hops.
    pub attack_byte_hops: u64,
    /// Mean hop count from the true origin at which direct attack packets
    /// were dropped (stop distance; `None` when nothing was dropped).
    pub stop_distance: Option<f64>,
    /// Scheme-specific extras (trust relationships, deploy latency, …).
    pub extra: BTreeMap<String, f64>,
}

impl OutcomeRow {
    /// Assemble the network-level part of a row from simulator stats.
    pub fn from_stats(scheme: &str, stats: &Stats) -> OutcomeRow {
        let direct = stats.class(TrafficClass::AttackDirect);
        let reflected = stats.class(TrafficClass::AttackReflected);
        let sent = direct.sent_pkts + reflected.sent_pkts;
        let delivered = direct.delivered_pkts + reflected.delivered_pkts;
        OutcomeRow {
            scheme: scheme.to_string(),
            legit_success: 1.0,
            collateral_success: 1.0,
            attack_delivered_ratio: if sent == 0 {
                0.0
            } else {
                delivered as f64 / sent as f64
            },
            reflected_delivered_to_victim: reflected.delivered_pkts,
            victim_overloaded: 0,
            victim_attack_absorbed: 0,
            attack_byte_hops: stats.attack_byte_hops(),
            stop_distance: stats.mean_stop_distance_all(TrafficClass::AttackDirect),
            extra: BTreeMap::new(),
        }
    }

    /// Attach an extra metric.
    pub fn with_extra(mut self, key: &str, value: f64) -> OutcomeRow {
        self.extra.insert(key.to_string(), value);
        self
    }

    /// Render as an aligned text table row (see [`print_table`]).
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            format!("{:.3}", self.legit_success),
            format!("{:.3}", self.collateral_success),
            format!("{:.3}", self.attack_delivered_ratio),
            format!("{}", self.reflected_delivered_to_victim),
            format!("{}", self.victim_overloaded),
            format!("{:.2e}", self.attack_byte_hops as f64),
            match self.stop_distance {
                Some(d) => format!("{d:.2}"),
                None => "-".to_string(),
            },
        ]
    }

    /// Header matching [`OutcomeRow::cells`].
    pub fn header() -> Vec<String> {
        [
            "scheme",
            "legit_ok",
            "collateral_ok",
            "attack_deliv",
            "refl@victim",
            "overload",
            "atk_byte_hops",
            "stop_dist",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }
}

/// Print rows as an aligned plain-text table (experiment harness output).
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Fraction of drops by a given reason relative to sent packets of a class.
pub fn drop_fraction(stats: &Stats, class: TrafficClass, reason: DropReason) -> f64 {
    let sent = stats.class(class).sent_pkts;
    if sent == 0 {
        return 0.0;
    }
    stats
        .drops
        .get(&(class, reason))
        .map(|agg| agg.pkts as f64 / sent as f64)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{Addr, NodeId, PacketBuilder, Proto, SimTime};

    #[test]
    fn row_from_stats_computes_ratio() {
        let mut stats = Stats::new();
        let mk = |class| {
            PacketBuilder::new(
                Addr::new(NodeId(0), 1),
                Addr::new(NodeId(1), 1),
                Proto::Udp,
                class,
            )
            .size(100)
            .build(1, NodeId(0))
        };
        let a = mk(TrafficClass::AttackDirect);
        stats.record_sent(&a);
        stats.record_dropped(&a, DropReason::SpoofFilter);
        let b = mk(TrafficClass::AttackReflected);
        stats.record_sent(&b);
        stats.record_delivered(SimTime::ZERO, NodeId(1), &b);
        let row = OutcomeRow::from_stats("x", &stats);
        assert!((row.attack_delivered_ratio - 0.5).abs() < 1e-9);
        assert_eq!(row.reflected_delivered_to_victim, 1);
        assert_eq!(row.stop_distance, Some(0.0));
    }

    #[test]
    fn drop_fraction_math() {
        let mut stats = Stats::new();
        let p = PacketBuilder::new(
            Addr::new(NodeId(0), 1),
            Addr::new(NodeId(1), 1),
            Proto::Udp,
            TrafficClass::LegitRequest,
        )
        .build(1, NodeId(0));
        for _ in 0..4 {
            stats.record_sent(&p);
        }
        stats.record_dropped(&p, DropReason::PushbackLimit);
        assert!(
            (drop_fraction(
                &stats,
                TrafficClass::LegitRequest,
                DropReason::PushbackLimit
            ) - 0.25)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn cells_align_with_header() {
        let stats = Stats::new();
        let row = OutcomeRow::from_stats("none", &stats);
        assert_eq!(row.cells().len(), OutcomeRow::header().len());
    }
}
