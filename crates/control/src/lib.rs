//! # dtcs-control — the traffic control service control plane
//!
//! The organisational half of the reproduced paper (Sec. 5 / Figs. 3–5):
//! network users register once with a **traffic control service provider
//! (TCSP)**, which verifies prefix ownership against an **Internet number
//! authority**, issues certificates, and maps scoped deployment requests
//! onto the **network management systems** of contracted ISPs, which in
//! turn configure the adaptive devices beside their routers. A direct
//! user→ISP path with ISP-to-ISP forwarding covers TCSP outages.

#![warn(missing_docs)]

pub mod authority;
pub mod catalog;
pub mod identity;
pub mod plane;
pub mod retry;
pub mod scenario;

pub use authority::InternetNumberAuthority;
pub use catalog::CatalogService;
pub use identity::{Certificate, UserId};
pub use plane::{
    AuthorityAgent, CpMsg, DeployScope, Envelope, IspContract, NmsAgent, RegistrationError, Role,
    TcspAgent, TcspHandle, TcspStats, UserAgent, UserHandle, UserOp, UserRecord, RECONCILE_TXN,
    RENEW_TXN_BASE, TOKEN_REGISTER, TOKEN_RENEW, TOKEN_SWEEP, TOKEN_WITHDRAW,
};
pub use retry::{CpStats, CpStatsHandle, Dedup, MsgKey, Retransmitter, RetryEvent, RetryPolicy};
pub use scenario::{partition_by_provider, ControlPlane, ControlPlaneConfig};
