//! E6 — Device scalability (Sec. 5.3).
//!
//! The paper argues the service scales because (a) rules grow with
//! *subscribers*, not with Internet users ("no additional rules must be
//! installed … when more users join the Internet"), and (b) redirection is
//! a prefix lookup whose cost is independent of the rule count. Measured
//! here: rule count vs subscriber count, per-packet device cost vs
//! registered-owner count, and the rule-table ablation (prefix trie vs
//! linear scan).

use std::time::Instant;

use serde::Serialize;

use dtcs::control::CatalogService;
use dtcs::device::trie::LinearTable;
use dtcs::device::{AdaptiveDevice, DeviceCommand, OwnerId, Stage};
use dtcs::netsim::rng::seeded;
use dtcs::netsim::{
    Addr, NodeId, PacketBuilder, Prefix, Proto, SimTime, Simulator, Topology, TrafficClass,
};
use rand::Rng;

use crate::util::{f, Report, Table};

/// Base seed for the throughput simulator (historically the literal `5`
/// passed to `Simulator::new`).
const SIM_SEED: u64 = 5;

/// Base seed for the LPM ablation's random prefixes/probes (historically
/// the literal `99` passed to `seeded`).
const LPM_SEED: u64 = 99;

#[derive(Serialize, Clone)]
struct RuleRow {
    subscribers: usize,
    services_per_subscriber: usize,
    total_rules: usize,
}

#[derive(Serialize, Clone)]
struct ThroughputRow {
    owners: usize,
    pkts: u64,
    wall_ms: f64,
    pkts_per_sec: f64,
}

#[derive(Serialize, Clone)]
struct LookupRow {
    structure: String,
    entries: usize,
    lookups: u64,
    ns_per_lookup: f64,
}

/// Rules installed on one device as subscribers sign up.
fn rules_vs_subscribers(subscribers: &[usize]) -> Vec<RuleRow> {
    subscribers
        .iter()
        .map(|&n| {
            let (mut dev, handle) = AdaptiveDevice::new(NodeId(0), None);
            let services = [
                CatalogService::AntiSpoofing,
                CatalogService::FirewallBlock {
                    protos: vec![Proto::Udp, Proto::TcpRst],
                },
                CatalogService::Statistics {
                    capacity: 1024,
                    sample_one_in: 64,
                },
            ];
            for i in 0..n {
                let owner = OwnerId(i as u64 + 1);
                dev.apply(DeviceCommand::RegisterOwner {
                    owner,
                    prefixes: vec![Prefix::new((i as u32) << 16, 16)],
                    contact: NodeId(0),
                });
                for s in &services {
                    dev.apply(DeviceCommand::InstallService {
                        txn: 0,
                        lease_until: SimTime::MAX,
                        owner,
                        stage: s.stage(),
                        spec: s.compile(),
                    });
                }
            }
            let total_rules = handle.lock().rule_count;
            drop(dev);
            RuleRow {
                subscribers: n,
                services_per_subscriber: services.len(),
                total_rules,
            }
        })
        .collect()
}

/// Per-packet device cost with `owners` registered owners, measured by
/// streaming packets through a 3-node simulator whose middle node carries
/// the device. Most packets are unowned (the redirect-miss fast path),
/// mirroring a transit device's reality.
fn device_throughput(owners: usize, pkts: u64, seed: u64) -> (ThroughputRow, dtcs::netsim::Stats) {
    let topo = Topology::line(3);
    let mut sim = Simulator::new(topo, seed);
    let (mut dev, _handle) = AdaptiveDevice::new(NodeId(1), None);
    for i in 0..owners {
        let owner = OwnerId(i as u64 + 1);
        dev.apply(DeviceCommand::RegisterOwner {
            owner,
            prefixes: vec![Prefix::new(((i as u32) + 100) << 16, 16)],
            contact: NodeId(0),
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner,
            stage: Stage::Dst,
            spec: CatalogService::FirewallBlock {
                protos: vec![Proto::TcpRst],
            }
            .compile(),
        });
    }
    sim.add_agent(NodeId(1), Box::new(dev));
    let dst = Addr::new(NodeId(2), 1);
    sim.install_app(dst, Box::new(dtcs::netsim::SinkApp));
    for k in 0..pkts {
        let at = SimTime(k * 1000);
        sim.schedule(at, move |s| {
            s.emit_now(
                NodeId(0),
                PacketBuilder::new(
                    Addr::new(NodeId(0), 1),
                    dst,
                    Proto::Udp,
                    TrafficClass::Background,
                )
                .size(100)
                .flow(k),
            );
        });
    }
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(3600));
    let wall = start.elapsed().as_secs_f64();
    crate::util::enforce_run_invariants("e6", &sim.stats);
    let row = ThroughputRow {
        owners,
        pkts,
        wall_ms: wall * 1e3,
        pkts_per_sec: pkts as f64 / wall,
    };
    (row, sim.stats)
}

/// Trie vs linear LPM lookup cost. Also returns the (deterministic,
/// timing-free) hit count so the sweep has a seed-sensitive metric.
fn lookup_ablation(entries: usize, lookups: u64, seed: u64) -> (Vec<LookupRow>, u64) {
    let mut rng = seeded(seed);
    let mut trie = dtcs::device::trie::PrefixTrie::new();
    let mut linear = LinearTable::new();
    for i in 0..entries {
        let p = Prefix::new(rng.gen::<u32>(), rng.gen_range(8..=24));
        trie.insert(p, i);
        linear.insert(p, i);
    }
    let probes: Vec<Addr> = (0..lookups).map(|_| Addr(rng.gen())).collect();

    let start = Instant::now();
    let mut hits = 0u64;
    for &a in &probes {
        if trie.lookup(a).is_some() {
            hits += 1;
        }
    }
    let trie_ns = start.elapsed().as_nanos() as f64 / lookups as f64;

    let start = Instant::now();
    let mut hits2 = 0u64;
    for &a in &probes {
        if linear.lookup(a).is_some() {
            hits2 += 1;
        }
    }
    let lin_ns = start.elapsed().as_nanos() as f64 / lookups as f64;
    assert_eq!(hits, hits2, "structures must agree");

    let rows = vec![
        LookupRow {
            structure: "prefix-trie".into(),
            entries,
            lookups,
            ns_per_lookup: trie_ns,
        },
        LookupRow {
            structure: "linear-scan".into(),
            entries,
            lookups,
            ns_per_lookup: lin_ns,
        },
    ];
    (rows, hits)
}

/// Subscriber-count axis shared by `run()` and the sweep adapter.
fn subscriber_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 100, 1000]
    } else {
        vec![10, 100, 1000, 10_000, 50_000]
    }
}

/// Owner-count axis for the throughput measurement.
fn owner_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![0, 100, 10_000]
    } else {
        vec![0, 10, 100, 1000, 10_000, 100_000]
    }
}

/// LPM table sizes for the lookup ablation.
fn table_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![100, 10_000]
    } else {
        vec![100, 1000, 10_000, 100_000]
    }
}

fn throughput_pkts(quick: bool) -> u64 {
    if quick {
        50_000
    } else {
        200_000
    }
}

fn lpm_lookups(quick: bool) -> u64 {
    if quick {
        200_000
    } else {
        1_000_000
    }
}

/// Sweep-grid adapter. Wall-clock timings (`wall_ms`, `ns_per_lookup`)
/// are deliberately NOT exported as sweep metrics — sweep output must be
/// byte-identical across thread counts — so the cells report only the
/// deterministic counters (rule counts, simulator packet totals, LPM hit
/// counts).
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let mut cells = Vec::new();
        for n in subscriber_counts(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e6",
                scenario: format!("rules/subscribers={n}"),
                base_seed: SIM_SEED,
                run: Box::new(move |_seed| {
                    let row = rules_vs_subscribers(&[n]).pop().expect("one row");
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("total_rules".to_string(), row.total_rules as f64);
                    metrics.insert(
                        "rules_per_sub".to_string(),
                        row.total_rules as f64 / row.subscribers as f64,
                    );
                    crate::sweep::CellRun {
                        metrics,
                        stats: dtcs::netsim::Stats::default(),
                    }
                }),
            });
        }
        for o in owner_counts(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e6",
                scenario: format!("throughput/owners={o}"),
                base_seed: SIM_SEED,
                run: Box::new(move |seed| {
                    let (row, stats) = device_throughput(o, throughput_pkts(quick), seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("pkts".to_string(), row.pkts as f64);
                    metrics.insert(
                        "delivered_pkts".to_string(),
                        stats.class(TrafficClass::Background).delivered_pkts as f64,
                    );
                    crate::sweep::CellRun { metrics, stats }
                }),
            });
        }
        for n in table_sizes(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e6",
                scenario: format!("lpm/entries={n}"),
                base_seed: LPM_SEED,
                run: Box::new(move |seed| {
                    let (_rows, hits) = lookup_ablation(n, lpm_lookups(quick), seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("hits".to_string(), hits as f64);
                    metrics.insert(
                        "hit_ratio".to_string(),
                        hits as f64 / lpm_lookups(quick) as f64,
                    );
                    crate::sweep::CellRun {
                        metrics,
                        stats: dtcs::netsim::Stats::default(),
                    }
                }),
            });
        }
        cells
    }
}

/// Run E6.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new("e6", "Device and rule-table scalability", "Sec. 5.3");

    let rows = rules_vs_subscribers(&subscriber_counts(quick));
    let mut t = Table::new(
        "rules vs subscribers (3 services each)",
        &[
            "subscribers",
            "services_each",
            "total_rules",
            "rules_per_sub",
        ],
    );
    for r in &rows {
        t.push(
            vec![
                r.subscribers.to_string(),
                r.services_per_subscriber.to_string(),
                r.total_rules.to_string(),
                f(r.total_rules as f64 / r.subscribers as f64),
            ],
            r,
        );
    }
    report.table(t);

    let pkts = throughput_pkts(quick);
    let rows: Vec<ThroughputRow> = owner_counts(quick)
        .iter()
        .map(|&o| device_throughput(o, pkts, SIM_SEED).0)
        .collect();
    let mut t = Table::new(
        "end-to-end device throughput vs registered owners (unowned traffic)",
        &["owners", "pkts", "wall_ms", "pkts_per_sec"],
    );
    for r in &rows {
        t.push(
            vec![
                r.owners.to_string(),
                r.pkts.to_string(),
                f(r.wall_ms),
                f(r.pkts_per_sec),
            ],
            r,
        );
    }
    report.table(t);

    let mut t = Table::new(
        "LPM rule-table ablation (DESIGN.md §5)",
        &["structure", "entries", "ns_per_lookup"],
    );
    for size in table_sizes(quick) {
        for r in lookup_ablation(size, lpm_lookups(quick), LPM_SEED).0 {
            t.push(
                vec![
                    r.structure.clone(),
                    r.entries.to_string(),
                    f(r.ns_per_lookup),
                ],
                &r,
            );
        }
    }
    report.table(t);
    report.note(
        "Rules grow linearly with subscribers and not with traffic or Internet size; trie \
         lookup cost is flat in the entry count while linear scan degrades by orders of \
         magnitude — the Sec. 5.3 scaling argument, measured. A sanity check that unowned \
         traffic pays only the lookup: throughput stays roughly constant from 0 to 100k owners.",
    );
    report
}
