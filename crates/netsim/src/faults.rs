//! Deterministic control-channel fault injection.
//!
//! The control plane (out-of-band [`crate::agent::ControlMsg`] delivery)
//! is lossless by default. A [`FaultPlane`] installed on the simulator
//! makes it adversarial: messages are dropped, duplicated, and
//! delay-jittered according to a pure hash of `(seed, src, dst, msg_seq)`,
//! and per-node *outage windows* model management-plane blackouts and
//! device crashes. Like the PR 4 trace sampler, every decision is a pure
//! function of the configuration — no RNG stream is consumed, so two runs
//! with the same `(seed, schedule)` produce byte-identical event orders,
//! and an installed-but-zero-rate plane perturbs nothing.
//!
//! Semantics:
//!
//! * **drop / duplicate / jitter** apply per control message, decided at
//!   push time from the per-ordered-pair message sequence number. A
//!   duplicate is a second delivery of the *same* payload (the payload is
//!   reference-counted), pushed after the original with its own extra
//!   delay, so receivers must dedup.
//! * An **outage window** `[from, until)` makes a node's control channel
//!   deaf and mute: messages it sends while down, or that would arrive
//!   while it is down, vanish. Agent timers still fire — retransmit logic
//!   keeps running and repairs the gap after the window closes.
//! * A **crash** outage additionally invokes
//!   [`crate::agent::NodeAgent::on_crash`] on every agent of the node at
//!   window start: volatile agent state (installed services, registered
//!   owners) is lost and must be re-provisioned by the management layer.
//! * A **partition window** `[from, until)` cuts the control channel
//!   *between* two node sets in one direction: any message pushed while
//!   the window is open whose sender is in the `src` set and receiver in
//!   the `dst` set is swallowed. Unlike an outage, both endpoints stay up
//!   and keep talking to everyone else — this models a management-plane
//!   network split (NMS can't reach its devices; devices can't reach
//!   their NMS) rather than a dead box. A symmetric cut is two windows.
//!
//! Fault counters live in [`crate::stats::Stats`] (`cp_*` fields), so
//! experiment reports can reconcile protocol-layer retry/dedup counters
//! against exactly what the channel did.

use crate::node::NodeId;
use crate::rng::child_seed;
use crate::time::{SimDuration, SimTime};

/// Stream label separating fault decisions from every other consumer of
/// the simulation seed ("faults01").
const FAULT_STREAM_LABEL: u64 = 0x6661_756c_7473_3031;

/// One control-plane outage window for a node.
#[derive(Clone, Copy, Debug)]
pub struct Outage {
    /// Affected node.
    pub node: NodeId,
    /// Window start (inclusive): the node stops sending/receiving.
    pub from: SimTime,
    /// Window end (exclusive): the node is reachable again.
    pub until: SimTime,
    /// When true, volatile agent state is lost at `from`
    /// ([`crate::agent::NodeAgent::on_crash`] fires); when false the node
    /// is merely unreachable (e.g. an NMS management-plane blackout).
    pub crash: bool,
}

/// One directed control-plane partition window: while open, messages
/// from any node in `src` to any node in `dst` are swallowed. Both node
/// sets are explicit (actor-pair cuts are singleton sets); membership is
/// a pure set lookup, so — like every other fault decision — two runs
/// with the same schedule cut exactly the same messages.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Sending side of the cut.
    pub src: Vec<NodeId>,
    /// Receiving side of the cut.
    pub dst: Vec<NodeId>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Does this window cut a `src → dst` message pushed at `t`?
    pub fn cuts(&self, src: NodeId, dst: NodeId, t: SimTime) -> bool {
        t >= self.from && t < self.until && self.src.contains(&src) && self.dst.contains(&dst)
    }
}

/// Fault-injection configuration.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Decision seed; combined with `(src, dst, msg_seq)` per message.
    pub seed: u64,
    /// Probability a control message is silently dropped.
    pub drop_prob: f64,
    /// Probability a control message is delivered twice.
    pub dup_prob: f64,
    /// Maximum extra delivery delay; actual jitter is uniform in
    /// `[0, jitter_max)` per message (zero disables jitter).
    pub jitter_max: SimDuration,
    /// Outage / crash schedule.
    pub outages: Vec<Outage>,
    /// Directed partition-window schedule (empty disables partitions).
    pub partitions: Vec<Partition>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            jitter_max: SimDuration::ZERO,
            outages: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

/// What the plane decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Silently drop the message.
    pub drop: bool,
    /// Extra delivery delay for the original copy.
    pub jitter: SimDuration,
    /// Deliver a second copy, this much later than the (jittered)
    /// original.
    pub duplicate: Option<SimDuration>,
}

/// Deterministic control-channel fault injector. Install with
/// [`crate::sim::Simulator::install_fault_plane`].
pub struct FaultPlane {
    salt: u64,
    /// Thresholds in 1/65536 units — probabilities are quantised once at
    /// construction so per-message decisions are pure integer compares.
    drop_thresh: u32,
    dup_thresh: u32,
    jitter_max: SimDuration,
    outages: Vec<Outage>,
    partitions: Vec<Partition>,
    /// Per ordered `(src, dst)` pair message counter; the third component
    /// of the decision hash.
    seq: std::collections::BTreeMap<(NodeId, NodeId), u64>,
}

impl FaultPlane {
    /// Build a plane from a configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlane {
        FaultPlane {
            salt: child_seed(cfg.seed, FAULT_STREAM_LABEL),
            drop_thresh: (cfg.drop_prob.clamp(0.0, 1.0) * 65536.0) as u32,
            dup_thresh: (cfg.dup_prob.clamp(0.0, 1.0) * 65536.0) as u32,
            jitter_max: cfg.jitter_max,
            outages: cfg.outages,
            partitions: cfg.partitions,
            seq: std::collections::BTreeMap::new(),
        }
    }

    /// Crash windows (node + start time), for the simulator to schedule
    /// [`crate::agent::NodeAgent::on_crash`] calls.
    pub fn crash_schedule(&self) -> Vec<(NodeId, SimTime)> {
        self.outages
            .iter()
            .filter(|o| o.crash)
            .map(|o| (o.node, o.from))
            .collect()
    }

    /// Is `node`'s control channel down at `t`?
    pub fn down(&self, node: NodeId, t: SimTime) -> bool {
        self.down_window(node, t).is_some()
    }

    /// Index (into the configured outage schedule) of the first window
    /// covering `node` at `t`, if any. This is the `window` id carried by
    /// control-trace outage verdicts and crash events
    /// ([`crate::cp_trace::CpTraceEvent`]), letting the analyzer join a
    /// swallowed message to the crash that caused it.
    pub fn down_window(&self, node: NodeId, t: SimTime) -> Option<usize> {
        self.outages
            .iter()
            .position(|o| o.node == node && t >= o.from && t < o.until)
    }

    /// Index (into the configured partition schedule) of the first window
    /// cutting a `src → dst` message pushed at `t`, if any. The index is
    /// the `window` id carried by control-trace partition verdicts, so
    /// the analyzer can join a swallowed message to the cut that ate it.
    pub fn partition_window(&self, src: NodeId, dst: NodeId, t: SimTime) -> Option<usize> {
        self.partitions.iter().position(|p| p.cuts(src, dst, t))
    }

    /// Crash windows with their outage-schedule indices
    /// `(window, node, start)` — like [`FaultPlane::crash_schedule`] but
    /// keeping the index that tags control-trace crash events.
    pub fn crash_windows(&self) -> Vec<(usize, NodeId, SimTime)> {
        self.outages
            .iter()
            .enumerate()
            .filter(|(_, o)| o.crash)
            .map(|(i, o)| (i, o.node, o.from))
            .collect()
    }

    /// Decide the fate of the next `src → dst` control message. Advances
    /// the pair's message counter; deterministic given the push order
    /// (which the engine already guarantees).
    pub fn decide(&mut self, src: NodeId, dst: NodeId) -> FaultDecision {
        let n = self.seq.entry((src, dst)).or_insert(0);
        let msg_seq = *n;
        *n += 1;
        let pair = child_seed(self.salt, ((src.0 as u64) << 32) | dst.0 as u64);
        let k = child_seed(pair, msg_seq);
        let drop = ((k & 0xFFFF) as u32) < self.drop_thresh;
        if drop {
            return FaultDecision {
                drop: true,
                jitter: SimDuration::ZERO,
                duplicate: None,
            };
        }
        let dup = (((k >> 16) & 0xFFFF) as u32) < self.dup_thresh;
        let scale = |bits: u64| -> SimDuration {
            SimDuration((self.jitter_max.0 as u128 * bits as u128 / 65536) as u64)
        };
        let jitter = scale((k >> 32) & 0xFFFF);
        let duplicate = if dup {
            // The copy trails the original by its own jittered offset; with
            // jitter disabled it lands at the same instant but a later
            // event sequence number, so ordering stays deterministic.
            Some(scale((k >> 48) & 0xFFFF))
        } else {
            None
        };
        FaultDecision {
            drop: false,
            jitter,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(drop: f64, dup: f64, jitter_ms: u64) -> FaultPlane {
        FaultPlane::new(FaultConfig {
            seed: 7,
            drop_prob: drop,
            dup_prob: dup,
            jitter_max: SimDuration::from_millis(jitter_ms),
            outages: Vec::new(),
            partitions: Vec::new(),
        })
    }

    #[test]
    fn zero_rates_touch_nothing() {
        let mut p = plane(0.0, 0.0, 0);
        for _ in 0..100 {
            let d = p.decide(NodeId(1), NodeId(2));
            assert_eq!(
                d,
                FaultDecision {
                    drop: false,
                    jitter: SimDuration::ZERO,
                    duplicate: None,
                }
            );
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut p = plane(1.0, 0.0, 0);
        for _ in 0..100 {
            assert!(p.decide(NodeId(3), NodeId(4)).drop);
        }
    }

    #[test]
    fn decisions_are_reproducible_and_pair_independent() {
        let mut a = plane(0.3, 0.2, 5);
        let mut b = plane(0.3, 0.2, 5);
        // Interleave pairs differently; per-pair sequences must not care.
        let seq_a: Vec<FaultDecision> = (0..50).map(|_| a.decide(NodeId(1), NodeId(2))).collect();
        for _ in 0..50 {
            b.decide(NodeId(2), NodeId(1)); // reverse direction: own stream
        }
        let seq_b: Vec<FaultDecision> = (0..50).map(|_| b.decide(NodeId(1), NodeId(2))).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn loss_rate_lands_near_configured() {
        let mut p = plane(0.2, 0.0, 0);
        let dropped = (0..2000)
            .filter(|_| p.decide(NodeId(9), NodeId(8)).drop)
            .count();
        assert!(
            (300..=500).contains(&dropped),
            "20% of 2000 ≈ 400, got {dropped}"
        );
    }

    #[test]
    fn outage_windows_are_half_open() {
        let p = FaultPlane::new(FaultConfig {
            outages: vec![Outage {
                node: NodeId(5),
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
                crash: true,
            }],
            ..FaultConfig::default()
        });
        assert!(!p.down(NodeId(5), SimTime::from_millis(999)));
        assert!(p.down(NodeId(5), SimTime::from_secs(1)));
        assert!(p.down(NodeId(5), SimTime::from_millis(1999)));
        assert!(!p.down(NodeId(5), SimTime::from_secs(2)));
        assert!(!p.down(NodeId(6), SimTime::from_millis(1500)));
        assert_eq!(p.crash_schedule(), vec![(NodeId(5), SimTime::from_secs(1))]);
        assert_eq!(p.down_window(NodeId(5), SimTime::from_secs(1)), Some(0));
        assert_eq!(p.down_window(NodeId(5), SimTime::from_secs(2)), None);
        assert_eq!(
            p.crash_windows(),
            vec![(0, NodeId(5), SimTime::from_secs(1))]
        );
    }

    #[test]
    fn partition_windows_cut_directed_set_pairs() {
        let p = FaultPlane::new(FaultConfig {
            partitions: vec![Partition {
                src: vec![NodeId(1), NodeId(2)],
                dst: vec![NodeId(7)],
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
            }],
            ..FaultConfig::default()
        });
        let t = SimTime::from_millis(1500);
        // Directed: src-set → dst-set only, and only inside the window.
        assert_eq!(p.partition_window(NodeId(1), NodeId(7), t), Some(0));
        assert_eq!(p.partition_window(NodeId(2), NodeId(7), t), Some(0));
        assert_eq!(p.partition_window(NodeId(7), NodeId(1), t), None);
        assert_eq!(p.partition_window(NodeId(1), NodeId(3), t), None);
        assert_eq!(
            p.partition_window(NodeId(1), NodeId(7), SimTime::from_millis(999)),
            None
        );
        // Half-open `[from, until)`, like outage windows.
        assert_eq!(
            p.partition_window(NodeId(1), NodeId(7), SimTime::from_secs(1)),
            Some(0)
        );
        assert_eq!(
            p.partition_window(NodeId(1), NodeId(7), SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn empty_partition_schedule_cuts_nothing() {
        let p = plane(0.0, 0.0, 0);
        for t in [SimTime::ZERO, SimTime::from_secs(5)] {
            assert_eq!(p.partition_window(NodeId(0), NodeId(1), t), None);
        }
    }
}
