//! The safety verifier (Sec. 4.5).
//!
//! Misuse of the delegated control "must be prevented from the very
//! beginning for gaining acceptance by network operators". The verifier is
//! the deployment-time gate: every service spec is checked before a device
//! instantiates it, and specs containing any capability from the forbidden
//! classes are rejected with a structured reason. The run-time complement
//! (the shrink-only [`crate::view::PacketView`] and the device's telemetry
//! budget) covers what a static check cannot.

use serde::{Deserialize, Serialize};

use crate::spec::{ModuleSpec, ServiceSpec, TriggerAction};

/// Why a spec was rejected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyViolation {
    /// Module would rewrite source/destination addresses.
    HeaderRewrite {
        /// Index of the offending module in the service graph.
        module: usize,
    },
    /// Module would modify the TTL field.
    TtlModification {
        /// Index of the offending module.
        module: usize,
    },
    /// Module would increase packet rate or traffic volume.
    Amplification {
        /// Index of the offending module.
        module: usize,
    },
    /// Module would divert traffic to another destination.
    Redirection {
        /// Index of the offending module.
        module: usize,
    },
    /// A trigger references a module index outside the graph.
    DanglingTriggerTarget {
        /// Index of the trigger module.
        module: usize,
        /// The out-of-range target it references.
        target: usize,
    },
    /// A trigger targets itself (activation loop).
    SelfTrigger {
        /// Index of the trigger module.
        module: usize,
    },
    /// Logger/backlog sized beyond the per-service memory allowance.
    ExcessiveState {
        /// Index of the offending module.
        module: usize,
        /// Bytes the module asked for.
        requested_bytes: u64,
        /// Allowance.
        limit_bytes: u64,
    },
    /// Non-positive or non-finite numeric parameter.
    InvalidParameter {
        /// Index of the offending module.
        module: usize,
        /// Which parameter.
        what: &'static str,
    },
}

/// Deployment-time service verifier.
#[derive(Clone, Debug)]
pub struct SafetyVerifier {
    /// Per-service state (log/backlog) allowance in bytes.
    pub max_state_bytes: u64,
}

impl Default for SafetyVerifier {
    fn default() -> Self {
        // 16 MiB of log/backlog state per service: generous for logging,
        // far below anything that could hurt the device.
        SafetyVerifier {
            max_state_bytes: 16 << 20,
        }
    }
}

impl SafetyVerifier {
    /// Verify a whole service spec; `Ok(())` only if every module passes.
    pub fn verify(&self, spec: &ServiceSpec) -> Result<(), SafetyViolation> {
        let n = spec.modules.len();
        for (i, node) in spec.modules.iter().enumerate() {
            self.verify_module(i, n, &node.module)?;
        }
        Ok(())
    }

    fn verify_module(
        &self,
        i: usize,
        graph_len: usize,
        m: &ModuleSpec,
    ) -> Result<(), SafetyViolation> {
        match m {
            ModuleSpec::RewriteHeader { .. } => Err(SafetyViolation::HeaderRewrite { module: i }),
            ModuleSpec::TtlModify { .. } => Err(SafetyViolation::TtlModification { module: i }),
            ModuleSpec::Amplify { .. } => Err(SafetyViolation::Amplification { module: i }),
            ModuleSpec::Redirect { .. } => Err(SafetyViolation::Redirection { module: i }),
            ModuleSpec::RateLimit {
                rate_bytes_per_sec, ..
            } => {
                if !rate_bytes_per_sec.is_finite() || *rate_bytes_per_sec <= 0.0 {
                    Err(SafetyViolation::InvalidParameter {
                        module: i,
                        what: "rate_bytes_per_sec",
                    })
                } else {
                    Ok(())
                }
            }
            ModuleSpec::Logger { capacity, .. } => {
                // Each entry stores a 16-byte digest record.
                let bytes = *capacity as u64 * 16;
                if bytes > self.max_state_bytes {
                    Err(SafetyViolation::ExcessiveState {
                        module: i,
                        requested_bytes: bytes,
                        limit_bytes: self.max_state_bytes,
                    })
                } else {
                    Ok(())
                }
            }
            ModuleSpec::DigestBacklog {
                bits,
                windows,
                hashes,
                window,
            } => {
                let bytes = (*bits as u64 / 8).max(1) * *windows as u64;
                if bytes > self.max_state_bytes {
                    return Err(SafetyViolation::ExcessiveState {
                        module: i,
                        requested_bytes: bytes,
                        limit_bytes: self.max_state_bytes,
                    });
                }
                if *hashes == 0 {
                    return Err(SafetyViolation::InvalidParameter {
                        module: i,
                        what: "hashes",
                    });
                }
                if window.as_nanos() == 0 {
                    return Err(SafetyViolation::InvalidParameter {
                        module: i,
                        what: "window",
                    });
                }
                Ok(())
            }
            ModuleSpec::Trigger {
                action,
                threshold,
                window,
                ..
            } => {
                if !threshold.is_finite() || *threshold <= 0.0 {
                    return Err(SafetyViolation::InvalidParameter {
                        module: i,
                        what: "threshold",
                    });
                }
                if window.as_nanos() == 0 {
                    return Err(SafetyViolation::InvalidParameter {
                        module: i,
                        what: "window",
                    });
                }
                if let TriggerAction::ActivateModule(t) = action {
                    if *t >= graph_len {
                        return Err(SafetyViolation::DanglingTriggerTarget {
                            module: i,
                            target: *t,
                        });
                    }
                    if *t == i {
                        return Err(SafetyViolation::SelfTrigger { module: i });
                    }
                }
                Ok(())
            }
            ModuleSpec::Filter { .. }
            | ModuleSpec::Blacklist { .. }
            | ModuleSpec::AntiSpoof
            | ModuleSpec::PayloadDelete { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GraphNodeSpec, MatchExpr, TriggerMetric};
    use dtcs_netsim::{Addr, NodeId, SimDuration};

    fn svc(modules: Vec<ModuleSpec>) -> ServiceSpec {
        ServiceSpec::chain("t", modules)
    }

    #[test]
    fn benign_service_passes() {
        let v = SafetyVerifier::default();
        let s = svc(vec![
            ModuleSpec::AntiSpoof,
            ModuleSpec::Filter { rules: vec![] },
            ModuleSpec::Logger {
                capacity: 1024,
                sample_one_in: 10,
            },
        ]);
        assert!(v.verify(&s).is_ok());
    }

    #[test]
    fn forbidden_modules_rejected() {
        let v = SafetyVerifier::default();
        type Check = fn(&SafetyViolation) -> bool;
        let cases: Vec<(ModuleSpec, Check)> = vec![
            (
                ModuleSpec::RewriteHeader {
                    new_src: Some(Addr::new(NodeId(1), 1)),
                    new_dst: None,
                },
                |e| matches!(e, SafetyViolation::HeaderRewrite { .. }),
            ),
            (ModuleSpec::TtlModify { delta: 10 }, |e| {
                matches!(e, SafetyViolation::TtlModification { .. })
            }),
            (ModuleSpec::Amplify { factor: 2 }, |e| {
                matches!(e, SafetyViolation::Amplification { .. })
            }),
            (
                ModuleSpec::Redirect {
                    to: Addr::new(NodeId(9), 9),
                },
                |e| matches!(e, SafetyViolation::Redirection { .. }),
            ),
        ];
        for (m, check) in cases {
            let err = v.verify(&svc(vec![ModuleSpec::AntiSpoof, m])).unwrap_err();
            assert!(check(&err), "wrong violation: {err:?}");
            // Offender index is reported correctly.
            match err {
                SafetyViolation::HeaderRewrite { module }
                | SafetyViolation::TtlModification { module }
                | SafetyViolation::Amplification { module }
                | SafetyViolation::Redirection { module } => assert_eq!(module, 1),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn oversized_logger_rejected() {
        let v = SafetyVerifier::default();
        let s = svc(vec![ModuleSpec::Logger {
            capacity: 10_000_000, // 160 MB > 16 MiB allowance
            sample_one_in: 1,
        }]);
        assert!(matches!(
            v.verify(&s),
            Err(SafetyViolation::ExcessiveState { .. })
        ));
    }

    #[test]
    fn trigger_target_validation() {
        let v = SafetyVerifier::default();
        let trig = |action| ModuleSpec::Trigger {
            expr: MatchExpr::any(),
            metric: TriggerMetric::PacketRate,
            threshold: 100.0,
            window: SimDuration::from_secs(1),
            action,
            tag: 1,
        };
        // Dangling target.
        let s = svc(vec![trig(TriggerAction::ActivateModule(5))]);
        assert!(matches!(
            v.verify(&s),
            Err(SafetyViolation::DanglingTriggerTarget { target: 5, .. })
        ));
        // Self-activation.
        let s = svc(vec![trig(TriggerAction::ActivateModule(0))]);
        assert!(matches!(
            v.verify(&s),
            Err(SafetyViolation::SelfTrigger { .. })
        ));
        // Valid target.
        let s = ServiceSpec {
            name: "t".into(),
            modules: vec![
                GraphNodeSpec {
                    module: trig(TriggerAction::ActivateModule(1)),
                    enabled: true,
                },
                GraphNodeSpec {
                    module: ModuleSpec::Filter { rules: vec![] },
                    enabled: false,
                },
            ],
        };
        assert!(v.verify(&s).is_ok());
    }

    #[test]
    fn bad_numeric_parameters() {
        let v = SafetyVerifier::default();
        let s = svc(vec![ModuleSpec::RateLimit {
            expr: MatchExpr::any(),
            rate_bytes_per_sec: 0.0,
            burst_bytes: 100,
        }]);
        assert!(matches!(
            v.verify(&s),
            Err(SafetyViolation::InvalidParameter { .. })
        ));
        let s = svc(vec![ModuleSpec::Trigger {
            expr: MatchExpr::any(),
            metric: TriggerMetric::ByteRate,
            threshold: f64::NAN,
            window: SimDuration::from_secs(1),
            action: TriggerAction::Notify,
            tag: 0,
        }]);
        assert!(v.verify(&s).is_err());
    }
}
