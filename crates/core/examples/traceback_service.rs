//! Traceback as a TCS application (Sec. 4.4): "our system could be used to
//! implement a worldwide packet traceback service such as SPIE by storing
//! a backlog of packet hashes … allow the network user to investigate the
//! origin of spoofed network traffic."
//!
//! A victim deploys the `TracebackSupport` catalog service — a digest
//! backlog on every adaptive device, scoped to the victim's own traffic —
//! then, after receiving a spoofed packet, queries the devices hop by hop
//! to walk back to the true origin. The spoofed source address would have
//! pointed somewhere else entirely.
//!
//! Run with: `cargo run --release -p dtcs --example traceback_service`

use dtcs::control::CatalogService;
use dtcs::device::{AdaptiveDevice, DeviceCommand, DeviceHandle, OwnerId};
use dtcs::netsim::{
    Addr, NodeId, PacketBuilder, Prefix, Proto, SimDuration, SimTime, Simulator, Topology,
    TrafficClass,
};
use std::collections::BTreeMap;

fn main() {
    let topo = Topology::barabasi_albert(120, 2, 0.1, 19);
    let mut sim = Simulator::new(topo, 19);
    let victim_node = sim.topo.stub_nodes()[2];
    let victim = Addr::new(victim_node, 1);
    sim.install_app(victim, Box::new(dtcs::netsim::SinkApp));
    println!("victim: {victim} at AS {victim_node:?}");

    // Deploy TracebackSupport everywhere. The service runs in the
    // *source* stage on traffic claiming the victim's addresses — exactly
    // the spoofed packets the victim wants to trace — and additionally we
    // install a Dst-stage backlog for inbound traffic.
    let owner = OwnerId(7);
    let svc_src = CatalogService::TracebackSupport {
        window: SimDuration::from_secs(1),
        windows: 60,
    };
    let mut devices: BTreeMap<NodeId, DeviceHandle> = BTreeMap::new();
    for i in 0..sim.topo.n() {
        let node = NodeId(i);
        let (mut dev, handle) = AdaptiveDevice::new(node, None);
        dev.apply(DeviceCommand::RegisterOwner {
            owner,
            prefixes: vec![Prefix::of_node(victim_node)],
            contact: victim_node,
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner,
            stage: svc_src.stage(),
            spec: svc_src.compile(),
        });
        dev.apply(DeviceCommand::InstallService {
            txn: 0,
            lease_until: SimTime::MAX,
            owner,
            stage: dtcs::device::Stage::Dst,
            spec: svc_src.compile(),
        });
        sim.add_agent(node, Box::new(dev));
        devices.insert(node, handle);
    }
    println!("traceback backlogs installed on {} devices", devices.len());

    // An attacker at a random stub spoofs a THIRD PARTY's address and
    // floods the victim; the victim wants to know who really sent it.
    let attacker_node = sim.topo.stub_nodes()[9];
    let framed_node = sim.topo.stub_nodes()[14]; // the innocent party being framed
    let spoofed_src = Addr::new(framed_node, 77);
    let evil = PacketBuilder::new(spoofed_src, victim, Proto::Udp, TrafficClass::AttackDirect)
        .size(100)
        .tag(0xBAD_CAFE);
    sim.emit_now(attacker_node, evil);
    sim.run_until(SimTime::from_secs(2));

    // The victim computes the digest of the offending packet it received.
    let offending = evil.build(0, attacker_node);
    let digest = dtcs::device::view::digest_packet(&offending);
    println!(
        "\noffending packet: src={spoofed_src} (claims AS {framed_node:?}), digest {digest:#x}"
    );

    // Live in-simulation query: a DeviceCommand::QueryDigest goes to every
    // device at t=2 s; the replies land on a probe agent at the victim.
    use dtcs::netsim::{AgentCtx, ControlMsg, LinkId, NodeAgent, Packet, Verdict};
    use parking_lot::Mutex;
    use std::sync::Arc;
    #[derive(Default)]
    struct Probe(Arc<Mutex<BTreeMap<usize, bool>>>);
    impl NodeAgent for Probe {
        fn name(&self) -> &'static str {
            "query-probe"
        }
        fn on_packet(
            &mut self,
            _: &mut AgentCtx<'_>,
            _: &mut Packet,
            _: Option<LinkId>,
        ) -> Verdict {
            Verdict::Forward
        }
        fn on_control(&mut self, _ctx: &mut AgentCtx<'_>, msg: &ControlMsg) {
            if let Some(dtcs::device::DeviceReply::DigestAnswer { node, hit, .. }) =
                msg.get::<dtcs::device::DeviceReply>()
            {
                self.0.lock().insert(node.0, hit.unwrap_or(false));
            }
        }
    }
    let answers: Arc<Mutex<BTreeMap<usize, bool>>> = Arc::default();
    sim.add_agent(victim_node, Box::new(Probe(answers.clone())));
    for i in 0..sim.topo.n() {
        sim.deliver_control(
            SimTime::from_secs(2),
            victim_node,
            NodeId(i),
            DeviceCommand::QueryDigest {
                owner,
                digest,
                from: SimTime::ZERO,
                to: SimTime::from_secs(2),
                reply_to: victim_node,
            },
        );
    }
    sim.run_until(SimTime::from_secs(4));

    let answers = answers.lock();
    let positive: Vec<NodeId> = answers
        .iter()
        .filter(|&(_, &hit)| hit)
        .map(|(&n, _)| NodeId(n))
        .collect();
    println!("devices whose backlog saw the packet: {positive:?}");

    // Walk: start at the victim, repeatedly move to the positive
    // neighbour farthest from the victim (BFS over positive nodes).
    let mut frontier = vec![victim_node];
    let mut visited = vec![victim_node];
    loop {
        let mut next = Vec::new();
        for &u in &frontier {
            for (w, _) in sim.topo.neighbours(u) {
                if positive.contains(&w) && !visited.contains(&w) {
                    visited.push(w);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let origin = *visited.last().expect("path non-empty");
    println!("\ntraceback walk: {visited:?}");
    println!("true origin (ground truth): AS {attacker_node:?}");
    println!("traceback verdict:          AS {origin:?}");
    println!("framed (spoofed) party:     AS {framed_node:?} — correctly NOT accused");
    assert_eq!(origin, attacker_node, "traceback must find the true origin");
}
