//! Small data structures backing the runtime modules: token bucket, Bloom
//! filter, and digest ring log. Hand-rolled (no external deps) and
//! allocation-free after construction — these sit on the per-packet path.

use dtcs_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Classic token bucket in bytes.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(rate_bytes_per_sec: f64, burst_bytes: u32) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    /// Try to consume `bytes` at time `now`; `true` if admitted.
    pub fn take(&mut self, now: SimTime, bytes: u32) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
            self.last = now;
        }
    }

    /// Current token level (for tests).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Fixed-size Bloom filter over `u64` digests, using double hashing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bloom {
    bits: Vec<u64>,
    nbits: u64,
    hashes: u8,
    inserted: u64,
}

impl Bloom {
    /// Filter with `nbits` bits (rounded up to a word) and `hashes`
    /// probes per element.
    pub fn new(nbits: u32, hashes: u8) -> Bloom {
        let words = ((nbits as usize).max(64)).div_ceil(64);
        Bloom {
            bits: vec![0; words],
            nbits: (words * 64) as u64,
            hashes: hashes.max(1),
            inserted: 0,
        }
    }

    fn probes(&self, digest: u64) -> impl Iterator<Item = u64> + '_ {
        // Double hashing: h_i = h1 + i * h2.
        let h1 = digest;
        let h2 = digest.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let nbits = self.nbits;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % nbits)
    }

    /// Insert a digest.
    pub fn insert(&mut self, digest: u64) {
        let positions: Vec<u64> = self.probes(digest).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Membership test (no false negatives).
    pub fn contains(&self, digest: u64) -> bool {
        self.probes(digest)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Elements inserted since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set (saturation indicator).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.nbits as f64
    }
}

/// One logged digest record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// When the packet was seen.
    pub at: SimTime,
    /// Header digest.
    pub digest: u64,
}

/// Fixed-capacity overwrite-oldest digest log.
#[derive(Clone, Debug)]
pub struct RingLog {
    entries: Vec<LogEntry>,
    head: usize,
    capacity: usize,
    total: u64,
}

impl RingLog {
    /// Ring of `capacity` entries.
    pub fn new(capacity: usize) -> RingLog {
        RingLog {
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: 0,
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Append, overwriting the oldest entry when full.
    pub fn push(&mut self, entry: LogEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Entries currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<LogEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.head..]);
        out.extend_from_slice(&self.entries[..self.head]);
        out
    }

    /// Total entries ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entries retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Sliding-window rate estimator: counts events in fixed windows and
/// reports the last completed window's rate.
#[derive(Clone, Debug)]
pub struct WindowRate {
    window: SimDuration,
    win_start: SimTime,
    count: f64,
    last_rate: f64,
}

impl WindowRate {
    /// Estimator with the given window width.
    pub fn new(window: SimDuration) -> WindowRate {
        WindowRate {
            window: SimDuration(window.as_nanos().max(1)),
            win_start: SimTime::ZERO,
            count: 0.0,
            last_rate: 0.0,
        }
    }

    /// Record `amount` at `now`; returns `Some((rate, gap))` when a
    /// window just completed: `rate` is the completed window's rate in
    /// amount/second and `gap` is true when one or more *empty* windows
    /// followed it (i.e. the rate then dropped to zero before `now`).
    /// Reporting both lets a consumer see a burst peak *and* the calm
    /// after it from a single packet arrival.
    pub fn record(&mut self, now: SimTime, amount: f64) -> Option<(f64, bool)> {
        let mut completed = None;
        if now >= self.win_start + self.window {
            let rate = self.count / self.window.as_secs_f64();
            let w = self.window.as_nanos();
            let skipped = (now.as_nanos() - self.win_start.as_nanos()) / w;
            let gap = skipped > 1;
            self.last_rate = if gap { 0.0 } else { rate };
            completed = Some((rate, gap));
            self.win_start = SimTime(self.win_start.as_nanos() + skipped * w);
            self.count = 0.0;
        }
        self.count += amount;
        completed
    }

    /// Rate over the last completed window.
    pub fn last_rate(&self) -> f64 {
        self.last_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_burst_then_limit() {
        let mut tb = TokenBucket::new(1000.0, 500);
        // Full burst available.
        assert!(tb.take(SimTime::ZERO, 500));
        assert!(!tb.take(SimTime::ZERO, 1));
        // After 100 ms, 100 bytes refilled.
        let t = SimTime::from_millis(100);
        assert!(tb.take(t, 100));
        assert!(!tb.take(t, 10));
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 200);
        let _ = tb.take(SimTime::ZERO, 0);
        let late = SimTime::from_secs(100);
        assert!(tb.take(late, 200));
        assert!(!tb.take(late, 1), "burst cap respected");
    }

    #[test]
    fn bloom_no_false_negatives() {
        let mut b = Bloom::new(1 << 14, 4);
        for i in 0..1000u64 {
            b.insert(i.wrapping_mul(0x2545F4914F6CDD1D));
        }
        for i in 0..1000u64 {
            assert!(b.contains(i.wrapping_mul(0x2545F4914F6CDD1D)));
        }
    }

    #[test]
    fn bloom_low_false_positives_when_sized() {
        let mut b = Bloom::new(1 << 16, 4);
        for i in 0..1000u64 {
            b.insert(i);
        }
        let fp = (100_000..110_000u64).filter(|&x| b.contains(x)).count();
        // ~65536 bits for 1000 elems, k=4: false-positive rate well under 1%.
        assert!(fp < 100, "false positives: {fp}/10000");
    }

    #[test]
    fn bloom_clear_resets() {
        let mut b = Bloom::new(256, 3);
        b.insert(42);
        assert!(b.contains(42));
        b.clear();
        assert!(!b.contains(42));
        assert_eq!(b.inserted(), 0);
        assert_eq!(b.fill_ratio(), 0.0);
    }

    #[test]
    fn ring_log_overwrites_oldest() {
        let mut r = RingLog::new(3);
        for i in 0..5u64 {
            r.push(LogEntry {
                at: SimTime(i),
                digest: i,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.digest).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn window_rate_basic() {
        let mut w = WindowRate::new(SimDuration::from_secs(1));
        for i in 0..10 {
            assert_eq!(w.record(SimTime::from_millis(i * 100), 1.0), None);
        }
        // First event of the next window completes the previous one.
        let r = w.record(SimTime::from_millis(1000), 1.0);
        assert_eq!(r, Some((10.0, false)));
        assert_eq!(w.last_rate(), 10.0);
    }

    #[test]
    fn window_rate_gap_reports_peak_then_zero() {
        let mut w = WindowRate::new(SimDuration::from_secs(1));
        w.record(SimTime::ZERO, 5.0);
        // Long silence then a packet: the completed window's peak rate is
        // reported together with the gap flag, and last_rate reads 0.
        let r = w.record(SimTime::from_secs(10), 1.0);
        assert_eq!(r, Some((5.0, true)));
        assert_eq!(w.last_rate(), 0.0);
    }
}
