//! Protocol-misuse attack substrate (Sec. 2.1).
//!
//! "Other ways to cause denial of service are the misuse of protocols …
//! (e.g. sending ICMP unreachable messages or TCP reset packets)". We model
//! long-lived TCP connections as heartbeat pairs; a forged RST that reaches
//! either side kills the connection. The TCS counter-measure (Sec. 4.3:
//! "attacks based on protocol misuse like e.g. sending … TCP reset messages
//! to tear down TCP connections can also be filtered out") is exercised in
//! experiment E8's companion scenario and the `distributed_firewall`
//! example.

use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_netsim::{
    Addr, App, AppApi, Disposition, Packet, PacketBuilder, Proto, SimDuration, TrafficClass,
};

/// State of one modelled connection.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    /// Heartbeats exchanged.
    pub heartbeats: u64,
    /// Was the connection torn down by an RST?
    pub killed: bool,
    /// Time of death (ns), if killed.
    pub killed_at_nanos: u64,
}

/// Shared handle to a connection's state.
pub type ConnHandle = Arc<Mutex<ConnStats>>;

const BEAT: u64 = 1;

/// Client half of a heartbeat connection.
pub struct ConnClientApp {
    /// Peer (server) address.
    pub server: Addr,
    /// Heartbeat period.
    pub period: SimDuration,
    alive: bool,
    stats: ConnHandle,
}

impl ConnClientApp {
    /// New client half; returns the shared connection stats.
    pub fn new(server: Addr, period: SimDuration) -> (ConnClientApp, ConnHandle) {
        let stats: ConnHandle = Arc::new(Mutex::new(ConnStats::default()));
        (
            ConnClientApp {
                server,
                period,
                alive: true,
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl App for ConnClientApp {
    fn on_start(&mut self, api: &mut AppApi<'_>) {
        api.set_timer(self.period, BEAT);
    }

    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if pkt.proto == Proto::TcpRst && pkt.src == self.server && self.alive {
            // A reset apparently from our peer: connection dies. The
            // endpoint cannot distinguish a forged RST from a real one —
            // that is exactly the attack.
            self.alive = false;
            let mut s = self.stats.lock();
            s.killed = true;
            s.killed_at_nanos = api.now.as_nanos();
        } else if pkt.proto == Proto::TcpData && pkt.src == self.server {
            self.stats.lock().heartbeats += 1;
        }
        Disposition::Consumed
    }

    fn on_timer(&mut self, api: &mut AppApi<'_>, token: u64) {
        if token != BEAT || !self.alive {
            return;
        }
        let b = PacketBuilder::new(
            api.self_addr,
            self.server,
            Proto::TcpData,
            TrafficClass::LegitRequest,
        )
        .size(120);
        api.send(b);
        api.set_timer(self.period, BEAT);
    }
}

/// Server half: echoes heartbeats until it sees an RST from the client.
pub struct ConnServerApp {
    /// Peer (client) address.
    pub client: Addr,
    alive: bool,
}

impl ConnServerApp {
    /// New server half.
    pub fn new(client: Addr) -> ConnServerApp {
        ConnServerApp {
            client,
            alive: true,
        }
    }
}

impl App for ConnServerApp {
    fn on_packet(&mut self, api: &mut AppApi<'_>, pkt: &Packet) -> Disposition {
        if pkt.proto == Proto::TcpRst && pkt.src == self.client {
            self.alive = false;
        } else if pkt.proto == Proto::TcpData && pkt.src == self.client && self.alive {
            let b = PacketBuilder::new(
                api.self_addr,
                self.client,
                Proto::TcpData,
                TrafficClass::LegitReply,
            )
            .size(120);
            api.send(b);
        }
        Disposition::Consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtcs_netsim::{NodeId, SimTime, Simulator, Topology};

    #[test]
    fn heartbeats_flow_until_forged_rst() {
        let topo = Topology::line(3);
        let mut sim = Simulator::new(topo, 3);
        let client = Addr::new(NodeId(0), 1);
        let server = Addr::new(NodeId(2), 1);
        let (c, stats) = ConnClientApp::new(server, SimDuration::from_millis(100));
        sim.install_app(client, Box::new(c));
        sim.install_app(server, Box::new(ConnServerApp::new(client)));
        sim.run_until(SimTime::from_secs(2));
        let before = stats.lock().heartbeats;
        assert!(before >= 15, "heartbeats={before}");
        assert!(!stats.lock().killed);
        // Forged RST claiming the server as source, emitted by node 1
        // (the attacker's position).
        sim.emit_now(
            NodeId(1),
            PacketBuilder::new(server, client, Proto::TcpRst, TrafficClass::AttackDirect).size(40),
        );
        sim.run_until(SimTime::from_secs(4));
        let s = stats.lock();
        assert!(s.killed, "forged RST must kill the connection");
        // No further heartbeats after death (allow the in-flight one).
        assert!(s.heartbeats <= before + 2);
    }
}
