//! Simulated time.
//!
//! The simulator advances a virtual clock measured in integer nanoseconds.
//! Using an integer representation (rather than `f64` seconds) keeps event
//! ordering exact and the whole simulation bit-for-bit reproducible across
//! platforms, which the experiment harness relies on.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from raw nanoseconds (the clock's native tick — also the
    /// timing wheel's slot granularity, see `dtcs_netsim::wheel`).
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero: durations are spans of
    /// simulated time and can never be negative.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Multiply the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Transmission time of `bytes` on a link of `bits_per_sec` capacity.
///
/// Rounds up so that a nonzero payload always takes at least one nanosecond,
/// preserving strict causality of back-to-back transmissions.
pub fn tx_time(bytes: u32, bits_per_sec: f64) -> SimDuration {
    debug_assert!(bits_per_sec > 0.0, "link bandwidth must be positive");
    let secs = (bytes as f64 * 8.0) / bits_per_sec;
    let nanos = (secs * 1e9).ceil() as u64;
    SimDuration(nanos.max(if bytes > 0 { 1 } else { 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimTime::from_millis(2_000), SimTime::from_secs(2));
        assert_eq!(SimTime::from_micros(5).0, 5_000);
        assert_eq!(SimTime::from_nanos(7).0, 7);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_nanos(1_000), SimDuration::from_micros(1));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.0, 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).0, 1_500_000_000);
    }

    #[test]
    fn tx_time_monotone_in_size() {
        let slow = tx_time(100, 1e6);
        let fast = tx_time(100, 1e9);
        assert!(slow > fast);
        assert!(tx_time(200, 1e6) > tx_time(100, 1e6));
        // 100 bytes at 1 Mbit/s = 800 us.
        assert_eq!(tx_time(100, 1e6), SimDuration::from_micros(800));
    }

    #[test]
    fn tx_time_zero_bytes_is_zero() {
        assert_eq!(tx_time(0, 1e6), SimDuration::ZERO);
        assert!(tx_time(1, 1e12) > SimDuration::ZERO);
    }
}
