//! E11 — Worm-driven botnet growth and time-to-mitigation (Sec. 2.1).
//!
//! The paper motivates the threat with worm outbreaks that "build up a
//! huge amplifying network of several ten thousand hosts in a short time".
//! Here the SI recruitment model drives agent activation: the experiment
//! reports the growth curve (time to 10/50/90% of the susceptible
//! population per infection rate β) and, downstream, how quickly the
//! ramping attack overwhelms the victim vs how quickly a TCS anomaly
//! trigger could have reacted.

use rayon::prelude::*;
use serde::Serialize;

use dtcs::attack::{ReflectorAttack, ReflectorAttackConfig, SiModel};
use dtcs::netsim::{SimDuration, SimTime, Simulator, Topology};

use crate::util::{f, fopt, Report, Table};

#[derive(Serialize, Clone)]
struct GrowthRow {
    beta: f64,
    susceptible: usize,
    t10_s: f64,
    t50_s: f64,
    t90_s: f64,
}

#[derive(Serialize, Clone)]
struct RampRow {
    beta: f64,
    agents: usize,
    time_to_overload_s: Option<f64>,
    victim_overloaded: u64,
}

/// Initially infected hosts in the SI model (the literal `2` in both
/// halves). A population parameter of the deterministic ODE, not an RNG
/// seed — it stays fixed across replicates.
const SI_SEED_HOSTS: usize = 2;

/// Base seed of the ramp simulation (historically the literal `44` for
/// topology, simulator, and attack config).
const RAMP_SEED: u64 = 44;

/// Infection rates for the pure growth curves.
const GROWTH_BETAS: [f64; 4] = [0.2, 0.5, 1.0, 2.0];

/// Infection rates for the ramping-attack half.
fn ramp_betas(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.3, 1.0]
    } else {
        vec![0.2, 0.4, 0.8, 1.6]
    }
}

/// Pure SI growth curve at one infection rate (no simulator involved;
/// the model is a deterministic integration, so there is no seed to
/// thread).
fn growth_case(beta: f64) -> GrowthRow {
    let s = 10_000;
    let m = SiModel {
        susceptible: s,
        seed: SI_SEED_HOSTS,
        beta,
        dt: SimDuration::from_millis(50),
    };
    GrowthRow {
        beta,
        susceptible: s,
        t10_s: m.time_to_fraction(0.1).as_secs_f64(),
        t50_s: m.time_to_fraction(0.5).as_secs_f64(),
        t90_s: m.time_to_fraction(0.9).as_secs_f64(),
    }
}

/// Ramping reflector attack at one infection rate. The SI seed
/// population is a fixed model parameter; the replicate seed drives the
/// topology, simulator, and attack config.
fn ramp_case(beta: f64, quick: bool, seed: u64) -> (RampRow, dtcs::netsim::Stats) {
    let n = if quick { 120 } else { 200 };
    let agents = if quick { 60 } else { 120 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, seed);
    let mut sim = Simulator::new(topo, seed);
    let victim_node = sim.topo.stub_nodes()[0];
    let dur = if quick { 25u64 } else { 40 };
    let attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: agents,
            n_reflectors: agents,
            agent_rate_pps: 40.0,
            start_at: SimTime::from_secs(2),
            stop_at: SimTime::from_secs(dur - 2),
            victim_capacity_pps: 500.0,
            si_recruitment: Some(SiModel {
                susceptible: agents,
                seed: SI_SEED_HOSTS,
                beta,
                dt: SimDuration::from_millis(100),
            }),
            seed,
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_secs(dur));
    crate::util::enforce_run_invariants("e11", &sim.stats);
    let v = attack.victim_stats.lock();
    let row = RampRow {
        beta,
        agents,
        time_to_overload_s: v.first_overload_nanos.map(|ns| (ns as f64 / 1e9) - 2.0),
        victim_overloaded: v.overloaded,
    };
    drop(v);
    (row, sim.stats)
}

/// Sweep-grid adapter: growth cells are deterministic (the SI model has
/// no RNG — every replicate reproduces the same curve, like e6's rule
/// counting); ramp cells replicate over the whole simulation (base 44).
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let quick = opts.quick;
        let mut cells = Vec::new();
        for beta in GROWTH_BETAS {
            cells.push(crate::sweep::SweepCell {
                experiment: "e11",
                scenario: format!("growth/beta={beta}"),
                base_seed: RAMP_SEED,
                run: Box::new(move |_seed| {
                    let row = growth_case(beta);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("t10_s".to_string(), row.t10_s);
                    metrics.insert("t50_s".to_string(), row.t50_s);
                    metrics.insert("t90_s".to_string(), row.t90_s);
                    crate::sweep::CellRun {
                        metrics,
                        stats: dtcs::netsim::Stats::default(),
                    }
                }),
            });
        }
        for beta in ramp_betas(quick) {
            cells.push(crate::sweep::SweepCell {
                experiment: "e11",
                scenario: format!("ramp/beta={beta}"),
                base_seed: RAMP_SEED,
                run: Box::new(move |seed| {
                    let (row, stats) = ramp_case(beta, quick, seed);
                    let mut metrics = std::collections::BTreeMap::new();
                    metrics.insert("agents".to_string(), row.agents as f64);
                    if let Some(t) = row.time_to_overload_s {
                        metrics.insert("time_to_overload_s".to_string(), t);
                    }
                    metrics.insert(
                        "victim_overloaded".to_string(),
                        row.victim_overloaded as f64,
                    );
                    crate::sweep::CellRun { metrics, stats }
                }),
            });
        }
        cells
    }
}

/// Run E11.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e11",
        "Botnet recruitment dynamics and attack ramp",
        "Sec. 2.1",
    );

    // Growth curves (pure model; cheap, so always full).
    let mut t = Table::new(
        "SI recruitment: time to reach fraction of susceptible pool (10k hosts)",
        &["beta", "t_10%", "t_50%", "t_90%"],
    );
    for beta in GROWTH_BETAS {
        let row = growth_case(beta);
        t.push(
            vec![f(beta), f(row.t10_s), f(row.t50_s), f(row.t90_s)],
            &row,
        );
    }
    report.table(t);

    // Ramping attack: time until the victim first overloads.
    let rows: Vec<RampRow> = ramp_betas(quick)
        .par_iter()
        .map(|&beta| ramp_case(beta, quick, RAMP_SEED).0)
        .collect();
    let mut t = Table::new(
        "ramping reflector attack: time from outbreak to victim overload",
        &["beta", "agents", "t_overload_s", "overload_pkts"],
    );
    for r in &rows {
        t.push(
            vec![
                f(r.beta),
                r.agents.to_string(),
                fopt(r.time_to_overload_s),
                r.victim_overloaded.to_string(),
            ],
            r,
        );
    }
    report.table(t);
    report.note(
        "Faster worms compress the victim's reaction window to seconds — compare E10's \
         trigger reaction (sub-second) and E7's deployment latency (tens of ms): the TCS \
         control loop is faster than every recruitment curve measured here, which is the \
         operational requirement for reactive deployment (Sec. 4.3).",
    );
    report
}
