//! Engine benches: raw event throughput of the discrete-event core under
//! a steady packet workload (the substrate cost every experiment pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs::netsim::{Addr, NodeId, PacketBuilder, Proto, SimTime, Simulator, Topology, TrafficClass};

fn run_workload(n_nodes: usize, pkts: u64) -> u64 {
    let topo = Topology::barabasi_albert(n_nodes, 2, 0.1, 3);
    let mut sim = Simulator::new(topo, 3);
    for i in 0..n_nodes {
        sim.install_app(Addr::new(NodeId(i), 1), Box::new(dtcs::netsim::SinkApp));
    }
    for k in 0..pkts {
        let from = NodeId((k as usize * 17) % n_nodes);
        let to = Addr::new(NodeId((k as usize * 31 + 7) % n_nodes), 1);
        let at = SimTime(k * 10_000);
        sim.schedule(at, move |s| {
            s.emit_now(
                from,
                PacketBuilder::new(Addr::new(from, 2), to, Proto::Udp, TrafficClass::Background)
                    .size(200)
                    .flow(k),
            );
        });
    }
    sim.run_until(SimTime::from_secs(600));
    sim.stats.events
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    for &n in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::new("ba_nodes", n), &n, |b, &n| {
            b.iter(|| run_workload(n, 5_000))
        });
    }
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    for &n in &[200usize, 1000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| Topology::barabasi_albert(n, 2, 0.1, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_topology);
criterion_main!(benches);
