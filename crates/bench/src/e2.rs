//! E2 — Mitigation-scheme effectiveness under a DDoS reflector attack
//! (the paper's Sec. 3 analysis plus Sec. 4.3 defense, made quantitative).
//!
//! Every scheme faces the identical attack and workload; the table is the
//! paper's qualitative comparison as measured rows. Expected shape:
//! pushback and i3(known-ip) do not help (server resources die before
//! links; no network perimeter), traceback-driven filtering *hurts*
//! third parties, SOS protects members at trust cost, and the TCS restores
//! service with no collateral while stopping attack traffic near its
//! sources.

use rayon::prelude::*;

use dtcs::attack::SpoofMode;
use dtcs::mitigation::{BlockScope, Placement};
use dtcs::netsim::SimTime;
use dtcs::{
    run_scenario, AttackKind, OutcomeRow, ScenarioConfig, Scheme, TcsStaticConfig, TraceSpec,
};

use crate::util::{f, fopt, hist_health, wheel_health, Report, Table};

/// The scenario config E2/E4/E9 share.
pub fn scenario(quick: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    if quick {
        cfg.n_nodes = 120;
        cfg.attack.n_agents = 50;
        cfg.attack.n_reflectors = 80;
        cfg.attack.stop_at = SimTime::from_secs(18);
        cfg.duration = SimTime::from_secs(20);
        cfg.n_clients = 20;
        cfg.n_collateral_clients = 15;
    }
    cfg
}

/// [`scenario`] with the CLI scale axes applied (`--topology`,
/// `--fluid`); with default options this is exactly `scenario(quick)`,
/// so the golden reports are untouched.
pub fn scenario_with(opts: &crate::RunOpts) -> ScenarioConfig {
    let mut cfg = scenario(opts.quick);
    opts.apply_scale(&mut cfg);
    cfg
}

/// Render one outcome row with the shared header.
pub fn outcome_cells(row: &OutcomeRow) -> Vec<String> {
    vec![
        row.scheme.clone(),
        f(row.legit_success),
        f(row.collateral_success),
        f(row.attack_delivered_ratio),
        row.reflected_delivered_to_victim.to_string(),
        row.victim_overloaded.to_string(),
        f(row.attack_byte_hops as f64),
        fopt(row.stop_distance),
    ]
}

/// Header matching [`outcome_cells`].
pub fn outcome_header() -> Vec<&'static str> {
    vec![
        "scheme",
        "legit_ok",
        "collateral_ok",
        "attack_deliv",
        "refl@victim",
        "overload",
        "atk_byte_hops",
        "stop_dist",
    ]
}

/// Flatten an outcome row into sweep metrics (scheme-specific extras keep
/// their names under an `extra.` prefix; the optional stop distance is
/// simply absent when nothing was dropped).
pub fn outcome_metrics(row: &OutcomeRow) -> std::collections::BTreeMap<String, f64> {
    let mut m = std::collections::BTreeMap::new();
    m.insert("legit_success".to_string(), row.legit_success);
    m.insert("collateral_success".to_string(), row.collateral_success);
    m.insert(
        "attack_delivered_ratio".to_string(),
        row.attack_delivered_ratio,
    );
    m.insert(
        "reflected_at_victim".to_string(),
        row.reflected_delivered_to_victim as f64,
    );
    m.insert(
        "victim_overloaded".to_string(),
        row.victim_overloaded as f64,
    );
    m.insert("attack_byte_hops".to_string(), row.attack_byte_hops as f64);
    if let Some(d) = row.stop_distance {
        m.insert("stop_distance".to_string(), d);
    }
    for (k, v) in &row.extra {
        m.insert(format!("extra.{k}"), *v);
    }
    m
}

/// The direct-flood contrast scenario and its scheme set (shared between
/// the single-run table and the sweep cells so the two stay in lockstep).
fn direct_contrast(cfg: &ScenarioConfig) -> (ScenarioConfig, Vec<Scheme>) {
    let mut dcfg = cfg.clone();
    dcfg.attack_kind = AttackKind::Direct {
        spoof: SpoofMode::Random,
    };
    dcfg.attack.agent_rate_pps *= 2.0;
    let reconstruct_at = SimTime(dcfg.attack.start_at.as_nanos() + 5_000_000_000);
    let schemes = vec![
        Scheme::None,
        Scheme::Ingress {
            fraction: 0.2,
            placement: Placement::TopDegree,
        },
        Scheme::TracebackFilter {
            marking_p: 0.04,
            reconstruct_at,
            scope: BlockScope::AllTraffic,
            min_share: 0.002,
        },
        Scheme::Tcs(TcsStaticConfig {
            fraction: 0.3,
            placement: Placement::TopDegree,
            activate_at: reconstruct_at,
            // The owner tailors the stage-2 firewall to the attack in
            // progress: a UDP flood gets a UDP block.
            dst_block_protos: Some(vec![dtcs::netsim::Proto::Udp]),
            ..Default::default()
        }),
    ];
    (dcfg, schemes)
}

/// Sweep-grid adapter (DESIGN.md §6.6): one cell per (attack shape,
/// scheme) — the full reflector comparison set plus the direct-flood
/// contrast — each replicated under derived seeds by the engine.
pub struct Sweep;

impl crate::sweep::GridExperiment for Sweep {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn cells(&self, opts: &crate::RunOpts) -> Vec<crate::sweep::SweepCell> {
        let cfg = scenario_with(opts);
        let mut schemes = Scheme::comparison_set(cfg.attack.start_at);
        schemes.push(Scheme::I3 { ip_hidden: true });
        let (dcfg, direct_schemes) = direct_contrast(&cfg);
        let mut cells = Vec::new();
        for (shape, shape_cfg, shape_schemes) in [
            ("reflector", &cfg, schemes),
            ("direct", &dcfg, direct_schemes),
        ] {
            for scheme in shape_schemes {
                let cell_cfg = shape_cfg.clone();
                cells.push(crate::sweep::SweepCell {
                    experiment: "e2",
                    scenario: format!("{shape}/scheme={}", scheme.label()),
                    base_seed: cell_cfg.seed,
                    run: Box::new(move |seed| {
                        let mut cfg = cell_cfg.clone();
                        cfg.seed = seed;
                        let out = run_scenario(&cfg, &scheme);
                        crate::sweep::CellRun {
                            metrics: outcome_metrics(&out.row),
                            stats: out.stats,
                        }
                    }),
                });
            }
        }
        cells
    }
}

/// Run E2.
pub fn run(opts: &crate::RunOpts) -> Report {
    let mut report = Report::new(
        "e2",
        "Scheme comparison under a reflector attack",
        "Sec. 3 + Sec. 4.3",
    );
    let cfg = scenario_with(opts);
    let schemes = Scheme::comparison_set(cfg.attack.start_at);
    // Also include the hidden-IP i3 row so both halves of the paper's i3
    // critique appear side by side.
    let mut all = schemes;
    all.push(Scheme::I3 { ip_hidden: true });

    let outs: Vec<_> = all.par_iter().map(|s| run_scenario(&cfg, s)).collect();
    let rows: Vec<OutcomeRow> = outs.iter().map(|o| o.row.clone()).collect();
    report.health(wheel_health(outs.iter().map(|o| &o.stats)));
    report.health(hist_health(outs.iter().map(|o| &o.stats)));

    // --trace: replay the undefended baseline with a flight recorder
    // attached and export the JSONL record. A separate run so the golden
    // comparison rows above stay untouched, and print-only reporting so
    // the golden report JSON does too.
    if let Some(path) = &opts.trace {
        let mut tcfg = cfg.clone();
        tcfg.trace = Some(TraceSpec::default());
        let out = run_scenario(&tcfg, &Scheme::None);
        let rec = out.trace.expect("trace requested");
        let mut file = std::fs::File::create(path).expect("create trace file");
        rec.export_jsonl(&mut file).expect("write trace file");
        report.health(format!(
            "trace: wrote {} events ({} recorded, {} evicted) to {}",
            rec.len(),
            rec.recorded(),
            rec.evicted(),
            path.display()
        ));
    }

    let mut t = Table::new(
        "scheme outcomes (identical attack + workload)",
        &outcome_header(),
    );
    for r in &rows {
        t.push(outcome_cells(r), r);
    }
    report.table(t);

    // Extras table (scheme-specific costs/diagnostics).
    let mut t = Table::new("scheme-specific diagnostics", &["scheme", "key", "value"]);
    for r in &rows {
        for (k, v) in &r.extra {
            t.push(vec![r.scheme.clone(), k.clone(), f(*v)], &(k, v));
        }
    }
    report.table(t);

    // Contrast table: the same core schemes against a classic randomly-
    // spoofed direct flood — where traceback names the TRUE agent ASes and
    // null-routing them genuinely helps (its residual collateral is the
    // Sec. 4.6 kind: innocents inside the zombies' own access networks).
    let (dcfg, direct_schemes) = direct_contrast(&cfg);
    let direct_rows: Vec<OutcomeRow> = direct_schemes
        .par_iter()
        .map(|s| run_scenario(&dcfg, s).row)
        .collect();
    let mut t = Table::new(
        "contrast: classic direct flood with random spoofing",
        &outcome_header(),
    );
    for r in &direct_rows {
        t.push(outcome_cells(r), r);
    }
    report.table(t);
    report.note(
        "Direct-flood contrast: traceback correctly names the agent ASes and null-routing \
         them relieves the victim — the counterproductivity of E4 is specific to reflector \
         attacks, exactly the paper's Sec. 3 argument arc.",
    );

    let none = rows.iter().find(|r| r.scheme == "none").expect("none row");
    let tcs = rows
        .iter()
        .find(|r| r.scheme.starts_with("tcs"))
        .expect("tcs row");
    report.note(format!(
        "TCS vs no-defense: legit success {} -> {}, attack byte-hops cut {:.1}x, collateral intact.",
        f(none.legit_success),
        f(tcs.legit_success),
        none.attack_byte_hops as f64 / tcs.attack_byte_hops.max(1) as f64
    ));
    report
}
