//! Control-plane flight-recorder overhead bench: one E13 fault-sweep
//! cell (quick mode, 20% loss, 15 s MTBF — the `--cp-trace` designated
//! cell) run three ways: control tracing disabled (the default every
//! experiment pays), sampled at 1-in-64 transactions, and full 1-in-1
//! capture. The disabled arm is the contract: with no sink installed
//! the funnel's tracing hook is a single `Option::None` branch and no
//! event is ever constructed, so the cost must stay ≤2%. Numbers are
//! recorded in `BENCH_cp_trace_overhead.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dtcs_bench::e13;

fn bench_cp_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_trace_overhead");
    group.sample_size(10);
    // The workload is identical across arms — tracing observes without
    // perturbing — so pin the engine event count once and assert it.
    let expected_events = e13::bench_cell(None);
    for (label, sampling) in [
        ("disabled", None),
        ("sampled_1_in_64", Some(64)),
        ("full_1_in_1", Some(1)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "e13_cell"), &sampling, |b, &s| {
            b.iter(|| {
                let events = e13::bench_cell(s);
                assert_eq!(events, expected_events, "tracing perturbed the run");
                events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cp_trace_overhead);
criterion_main!(benches);
