//! E12 — Deployment incentives (Sec. 4.6).
//!
//! "Malicious or illegitimate traffic can now be filtered closer to the
//! source. This frees valuable bandwidth resources…" — the paper's pitch
//! to ISPs. This experiment measures it from the ISP's chair: partition
//! the internet into provider cones, run the same reflector attack with
//! and without a partial TCS deployment, and account each ISP's attack
//! bytes carried (from the per-link ground-truth counters). The split
//! between deployers and non-deployers quantifies both the direct benefit
//! and the free-rider effect.

use std::collections::BTreeMap;

use serde::Serialize;

use dtcs::attack::{install_clients, ReflectorAttack, ReflectorAttackConfig};
use dtcs::control::partition_by_provider;
use dtcs::mitigation::Placement;
use dtcs::netsim::{NodeId, Prefix, SimDuration, SimTime, Simulator, Topology};
use dtcs::{deploy_tcs_static, TcsStaticConfig};

use crate::util::{f, Report, Table};

#[derive(Serialize, Clone)]
struct IspRow {
    isp: usize,
    routers: usize,
    deployed: bool,
    attack_mb_undefended: f64,
    attack_mb_defended: f64,
    saved_pct: f64,
}

/// Attack bytes carried per ISP (sum over its routers' incident links,
/// halved since both endpoints count each link once here via ownership by
/// lower node id).
fn attack_bytes_per_isp(sim: &Simulator, isp_of: &BTreeMap<usize, usize>) -> BTreeMap<usize, u64> {
    let mut per_isp: BTreeMap<usize, u64> = BTreeMap::new();
    for link in &sim.topo.links {
        let bytes: u64 = link.dirs.iter().map(|d| d.attack_bytes_sent).sum();
        // Attribute half to each endpoint's ISP (a link burdens both).
        for end in [link.a, link.b] {
            if let Some(&isp) = isp_of.get(&end.0) {
                *per_isp.entry(isp).or_insert(0) += bytes / 2;
            }
        }
    }
    per_isp
}

fn run_once(deploy: bool, quick: bool) -> (Simulator, Vec<NodeId>) {
    let n = if quick { 120 } else { 250 };
    let topo = Topology::barabasi_albert(n, 2, 0.1, 88);
    let mut sim = Simulator::new(topo, 88);
    let victim_node = sim.topo.stub_nodes()[2];
    let mut deployed_nodes = Vec::new();
    if deploy {
        let dep = deploy_tcs_static(
            &mut sim,
            Prefix::of_node(victim_node),
            &TcsStaticConfig {
                fraction: 0.25,
                // Random placement: entire provider cones stay undeployed,
                // making the free-rider group visible.
                placement: Placement::Random,
                seed: 88,
                ..Default::default()
            },
        );
        deployed_nodes = dep.nodes;
    }
    let dur = if quick { 15u64 } else { 25 };
    let _attack = ReflectorAttack::install(
        &mut sim,
        victim_node,
        &ReflectorAttackConfig {
            n_agents: if quick { 60 } else { 100 },
            n_reflectors: if quick { 80 } else { 150 },
            agent_rate_pps: 60.0,
            start_at: SimTime::from_secs(2),
            stop_at: SimTime::from_secs(dur - 2),
            seed: 88,
            ..Default::default()
        },
    );
    let _clients = install_clients(
        &mut sim,
        dtcs::netsim::Addr::new(victim_node, dtcs::attack::hosts::SERVICE),
        15,
        SimDuration::from_millis(250),
        SimTime::from_secs(dur),
        88,
    );
    sim.run_until(SimTime::from_secs(dur));
    crate::util::enforce_run_invariants("e12", &sim.stats);
    (sim, deployed_nodes)
}

/// Run E12.
pub fn run(opts: &crate::RunOpts) -> Report {
    let quick = opts.quick;
    let mut report = Report::new(
        "e12",
        "ISP incentives: attack bandwidth saved per provider",
        "Sec. 4.6",
    );
    let (sim_base, _) = run_once(false, quick);
    let (sim_tcs, deployed) = run_once(true, quick);

    // ISP partition (identical for both runs: same topology/seed).
    let isps = partition_by_provider(&sim_base);
    let mut isp_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, isp) in isps.iter().enumerate() {
        for &node in &isp.managed {
            isp_of.insert(node.0, i);
        }
    }
    let base = attack_bytes_per_isp(&sim_base, &isp_of);
    let with = attack_bytes_per_isp(&sim_tcs, &isp_of);

    let mut rows: Vec<IspRow> = isps
        .iter()
        .enumerate()
        .map(|(i, isp)| {
            let b = *base.get(&i).unwrap_or(&0) as f64 / 1e6;
            let w = *with.get(&i).unwrap_or(&0) as f64 / 1e6;
            IspRow {
                isp: i,
                routers: isp.managed.len(),
                deployed: isp.managed.iter().any(|n| deployed.contains(n)),
                attack_mb_undefended: b,
                attack_mb_defended: w,
                saved_pct: if b > 0.0 { (1.0 - w / b) * 100.0 } else { 0.0 },
            }
        })
        .collect();
    rows.sort_by(|a, b| b.attack_mb_undefended.total_cmp(&a.attack_mb_undefended));

    let mut t = Table::new(
        "attack megabytes carried per ISP, without vs with a 25% TCS deployment",
        &[
            "isp",
            "routers",
            "deployed",
            "attack_MB_before",
            "attack_MB_after",
            "saved_%",
        ],
    );
    for r in rows.iter().take(12) {
        t.push(
            vec![
                r.isp.to_string(),
                r.routers.to_string(),
                r.deployed.to_string(),
                f(r.attack_mb_undefended),
                f(r.attack_mb_defended),
                format!("{:.1}", r.saved_pct),
            ],
            r,
        );
    }
    report.table(t);

    // Aggregate: deployers vs free riders.
    let agg = |pred: bool| -> (f64, f64) {
        rows.iter()
            .filter(|r| r.deployed == pred)
            .fold((0.0, 0.0), |(b, w), r| {
                (b + r.attack_mb_undefended, w + r.attack_mb_defended)
            })
    };
    let (db, dw) = agg(true);
    let (fb, fw) = agg(false);
    let mut t = Table::new(
        "aggregate: deployers vs non-deployers",
        &["group", "attack_MB_before", "attack_MB_after", "saved_%"],
    );
    for (name, b, w) in [("deployers", db, dw), ("free-riders", fb, fw)] {
        t.push(
            vec![
                name.to_string(),
                f(b),
                f(w),
                format!("{:.1}", if b > 0.0 { (1.0 - w / b) * 100.0 } else { 0.0 }),
            ],
            &(name, b, w),
        );
    }
    report.table(t);
    report.note(
        "Deploying ISPs shed the bulk of the attack bytes they previously hauled (the \
         premium-service pitch of Sec. 4.6), and the savings spill over to non-deployers \
         too — filtering near the source frees everyone's links, which is simultaneously \
         the incentive and the free-rider tension of incremental roll-out.",
    );
    report
}
