//! Whole-control-plane installation: builds the Fig. 3 network model —
//! number authority, TCSP, per-ISP network management systems, and an
//! adaptive device beside every managed router — inside a simulator.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dtcs_device::{AdaptiveDevice, DeviceHandle};
use dtcs_netsim::{NodeId, NodeRole, Prefix, SimDuration, SimTime, Simulator};

use crate::authority::InternetNumberAuthority;
use crate::catalog::CatalogService;
use crate::identity::UserId;
use crate::plane::{
    AuthorityAgent, DeployScope, IspContract, TcspAgent, TcspHandle, UserAgent, UserHandle,
    TOKEN_REGISTER, TOKEN_SWEEP,
};
use crate::retry::CpStatsHandle;

/// Partition a topology into ISPs: every transit node becomes an ISP
/// managing itself plus the stub ASes closest to it (ties to the
/// lowest-id transit). Degenerate topologies without transit nodes become
/// a single ISP run from node 0.
pub fn partition_by_provider(sim: &Simulator) -> Vec<IspContract> {
    let transit: Vec<NodeId> = sim
        .topo
        .nodes
        .iter()
        .filter(|n| n.role == NodeRole::Transit)
        .map(|n| n.id)
        .collect();
    if transit.is_empty() {
        return vec![IspContract {
            nms_node: NodeId(0),
            managed: (0..sim.topo.n()).map(NodeId).collect(),
        }];
    }
    let mut managed: BTreeMap<NodeId, Vec<NodeId>> =
        transit.iter().map(|&t| (t, vec![t])).collect();
    for i in 0..sim.topo.n() {
        let node = NodeId(i);
        if sim.topo.nodes[i].role == NodeRole::Transit {
            continue;
        }
        let provider = transit
            .iter()
            .copied()
            .min_by_key(|&t| (sim.routing.distance(node, t).unwrap_or(u16::MAX), t.0))
            .expect("transit set non-empty");
        managed
            .get_mut(&provider)
            .expect("provider exists")
            .push(node);
    }
    managed
        .into_iter()
        .map(|(nms_node, managed)| IspContract { nms_node, managed })
        .collect()
}

/// A fully-installed control plane.
pub struct ControlPlane {
    /// TCSP signing key (public side used by NMSes to verify certs).
    pub tcsp_key: u64,
    /// Node hosting the TCSP.
    pub tcsp_node: NodeId,
    /// Node hosting the number authority.
    pub authority_node: NodeId,
    /// Contracted ISPs.
    pub isps: Vec<IspContract>,
    /// TCSP observability.
    pub tcsp_stats: TcspHandle,
    /// Availability switch — set to `false` to simulate a DDoS against the
    /// TCSP itself.
    pub tcsp_available: Arc<Mutex<bool>>,
    /// Per-router device handles.
    pub devices: BTreeMap<NodeId, DeviceHandle>,
    /// Control-plane-wide reliability counters (retransmits, dedup hits,
    /// reconciliation activity) shared by every protocol agent.
    pub cp_stats: CpStatsHandle,
    user_seq: u64,
}

impl ControlPlane {
    /// Install the full control plane: authority at `authority_node`, TCSP
    /// at `tcsp_node`, one NMS per ISP, and an adaptive device on every
    /// managed router.
    pub fn install(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
    ) -> ControlPlane {
        Self::install_inner(
            sim,
            authority,
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            None,
        )
    }

    /// Like [`ControlPlane::install`], with the NMS anti-entropy sweep
    /// enabled: every `reconcile_every`, each NMS inventories its managed
    /// devices and re-installs services lost to crashes.
    pub fn install_with_reconcile(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
        reconcile_every: SimDuration,
    ) -> ControlPlane {
        Self::install_inner(
            sim,
            authority,
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            Some(reconcile_every),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn install_inner(
        sim: &mut Simulator,
        authority: InternetNumberAuthority,
        tcsp_key: u64,
        tcsp_node: NodeId,
        authority_node: NodeId,
        isps: Vec<IspContract>,
        reconcile_every: Option<SimDuration>,
    ) -> ControlPlane {
        let cp_stats = CpStatsHandle::default();
        sim.add_agent(authority_node, Box::new(AuthorityAgent::new(authority)));
        let (tcsp, tcsp_stats, tcsp_available) =
            TcspAgent::new(tcsp_key, authority_node, isps.clone());
        sim.add_agent(tcsp_node, Box::new(tcsp.with_cp_stats(cp_stats.clone())));
        let mut devices = BTreeMap::new();
        for isp in &isps {
            let peers: Vec<NodeId> = isps
                .iter()
                .map(|i| i.nms_node)
                .filter(|&n| n != isp.nms_node)
                .collect();
            let mut nms = crate::plane::NmsAgent::new(tcsp_key, isp.managed.clone(), peers)
                .with_cp_stats(cp_stats.clone());
            if let Some(every) = reconcile_every {
                nms = nms.with_reconcile(every);
            }
            let idx = sim.add_agent(isp.nms_node, Box::new(nms));
            if let Some(every) = reconcile_every {
                sim.schedule_agent_timer(isp.nms_node, idx, SimTime::ZERO + every, TOKEN_SWEEP);
            }
            for &node in &isp.managed {
                let (dev, handle) = AdaptiveDevice::new(node, Some(isp.nms_node));
                sim.add_agent(node, Box::new(dev));
                devices.insert(node, handle);
            }
        }
        ControlPlane {
            tcsp_key,
            tcsp_node,
            authority_node,
            isps,
            tcsp_stats,
            tcsp_available,
            devices,
            cp_stats,
            user_seq: 1,
        }
    }

    /// Add a network user at `node` who registers at `register_at`, then
    /// deploys `service` with `scope`. `fallback` enables the direct-ISP
    /// path when the TCSP stays silent.
    #[allow(clippy::too_many_arguments)]
    pub fn add_user(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        fallback: bool,
    ) -> (UserId, UserHandle) {
        self.add_user_with(
            sim,
            node,
            claim,
            service,
            scope,
            register_at,
            fallback,
            |a| a,
        )
    }

    /// Like [`ControlPlane::add_user`] with a customisation hook for the
    /// user agent (deploy delay, timeout, …).
    #[allow(clippy::too_many_arguments)]
    pub fn add_user_with(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        claim: Vec<Prefix>,
        service: CatalogService,
        scope: DeployScope,
        register_at: SimTime,
        fallback: bool,
        customize: impl FnOnce(UserAgent) -> UserAgent,
    ) -> (UserId, UserHandle) {
        let user = UserId(0xAA00 + self.user_seq);
        self.user_seq += 1;
        let (mut agent, handle) =
            UserAgent::new(user, claim, self.tcsp_node, service, scope, register_at);
        agent = agent.with_cp_stats(self.cp_stats.clone());
        if fallback {
            agent = agent.with_fallback(self.isps.iter().map(|i| i.nms_node).collect());
        }
        agent = customize(agent);
        let idx = sim.add_agent(node, Box::new(agent));
        sim.schedule_agent_timer(node, idx, register_at, TOKEN_REGISTER);
        (user, handle)
    }

    /// Total rules installed across all devices (E6 metric).
    pub fn total_rules(&self) -> usize {
        self.devices.values().map(|h| h.lock().rule_count).sum()
    }

    /// Number of devices with at least one installed rule.
    pub fn devices_configured(&self) -> usize {
        self.devices
            .values()
            .filter(|h| h.lock().rule_count > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::DeployScope;
    use dtcs_netsim::Topology;

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let topo = Topology::transit_stub_multihomed(4, 6, 0.2, 7);
        let sim = Simulator::new(topo, 3);
        let isps = partition_by_provider(&sim);
        assert_eq!(isps.len(), 4);
        let mut seen = vec![false; sim.topo.n()];
        for isp in &isps {
            for &n in &isp.managed {
                assert!(!seen[n.0], "node managed twice");
                seen[n.0] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every node managed");
    }

    #[test]
    fn full_registration_and_deployment_flow() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        // Pre-allocate: the user genuinely owns the victim prefix.
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp = ControlPlane::install(
            &mut sim,
            authority,
            0x5EC, // key
            tcsp_node,
            authority_node,
            isps,
        );
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(10));
        let r = record.lock();
        assert!(r.registered_at.is_some(), "registration must complete");
        assert!(!r.denied);
        assert!(
            r.deploy_confirmed_at.is_some(),
            "deployment must be confirmed"
        );
        assert!(r.devices_configured > 0, "devices configured: {r:?}");
        assert_eq!(r.installs_rejected, 0);
        drop(r);
        assert!(cp.total_rules() > 0);
        assert_eq!(cp.devices_configured(), sim.topo.n());
        assert_eq!(cp.tcsp_stats.lock().registrations_ok, 1);
    }

    #[test]
    fn bogus_ownership_claim_is_denied() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let foreign = Prefix::of_node(sim.topo.stub_nodes()[1]);
        let authority = InternetNumberAuthority::new(); // no allocations
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![foreign],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(5));
        let r = record.lock();
        assert!(r.denied, "claiming someone else's prefix must be denied");
        assert!(r.deploy_confirmed_at.is_none());
        assert_eq!(cp.total_rules(), 0, "no rules without a certificate");
        assert_eq!(cp.tcsp_stats.lock().registrations_denied, 1);
    }

    #[test]
    fn tcsp_outage_triggers_isp_fallback() {
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user_with(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::AllManaged,
            SimTime::from_millis(100),
            true, // fallback enabled
            |a| a.with_deploy_delay(dtcs_netsim::SimDuration::from_secs(1)),
        );
        // Let registration succeed, then take the TCSP down before the
        // deployment request lands.
        let available = cp.tcsp_available.clone();
        sim.schedule(SimTime::from_millis(500), move |_| {
            *available.lock() = false;
        });
        sim.run_until(SimTime::from_secs(20));
        let r = record.lock();
        assert!(r.registered_at.is_some());
        assert!(r.used_fallback, "user must fall back to the ISPs");
        assert!(
            r.devices_configured > 0,
            "fallback deployment configures devices: {r:?}"
        );
        assert!(r.fallback_acks > 0);
    }

    #[test]
    fn forged_certificates_deploy_nothing() {
        // A certificate signed under the wrong key is rejected by every
        // NMS, on both the TCSP path and the direct fallback path.
        let topo = Topology::transit_stub_multihomed(3, 5, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let cp = ControlPlane::install(
            &mut sim,
            InternetNumberAuthority::new(),
            0x5EC,
            tcsp_node,
            authority_node,
            isps,
        );
        // Forge: issued under a different key.
        let forged = crate::identity::Certificate::issue(
            0xBAD,
            UserId(0xAA01),
            vec![Prefix::of_node(victim_node)],
            SimTime::from_secs(1_000_000),
        );
        let nms = cp.isps[0].nms_node;
        sim.deliver_control(
            SimTime::from_millis(10),
            victim_node,
            nms,
            crate::plane::Envelope {
                to: crate::plane::Role::Nms,
                key: crate::retry::MsgKey::first(0xAA01, 1),
                msg: crate::plane::CpMsg::DeployRequest {
                    cert: forged,
                    service: CatalogService::AntiSpoofing,
                    scope: DeployScope::AllManaged,
                    txn: 1,
                    reply_to: victim_node,
                    forward_to_peers: true,
                },
            },
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(cp.total_rules(), 0, "forged cert must configure nothing");
    }

    #[test]
    fn scoped_deployment_configures_fewer_devices() {
        let topo = Topology::transit_stub_multihomed(4, 8, 0.2, 7);
        let mut sim = Simulator::new(topo, 3);
        let victim_node = sim.topo.stub_nodes()[0];
        let mut authority = InternetNumberAuthority::new();
        let user_prefix = Prefix::of_node(victim_node);
        authority.allocate(user_prefix, UserId(0xAA01));
        let isps = partition_by_provider(&sim);
        let tcsp_node = sim.topo.transit_nodes()[0];
        let authority_node = sim.topo.transit_nodes()[1];
        let mut cp =
            ControlPlane::install(&mut sim, authority, 0x5EC, tcsp_node, authority_node, isps);
        let (_user, record) = cp.add_user(
            &mut sim,
            victim_node,
            vec![user_prefix],
            CatalogService::AntiSpoofing,
            DeployScope::StubBorders,
            SimTime::from_millis(100),
            false,
        );
        sim.run_until(SimTime::from_secs(10));
        let r = record.lock();
        assert!(r.deploy_confirmed_at.is_some());
        // Only the 4 transit (stub-border) routers get rules.
        assert_eq!(cp.devices_configured(), 4, "{r:?}");
    }
}
