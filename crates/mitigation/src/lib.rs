//! # dtcs-mitigation — baseline DDoS mitigation schemes
//!
//! Full reimplementations of the prior-art systems the reproduced paper
//! analyses in Sec. 3, so that its comparative-effectiveness claims can be
//! measured rather than asserted:
//!
//! * [`ingress`] — static RFC 2267 ingress filtering (proactive baseline);
//! * [`pushback`] — aggregate congestion control with upstream pushback;
//! * [`ppm`] — Savage-style probabilistic packet-marking traceback;
//! * [`spie`] — hash-based (Bloom digest) traceback;
//! * [`filtering`] — reactive filter installation from traceback verdicts;
//! * [`overlay`] — SOS/Mayday secure overlays and i3-style indirection;
//! * [`deploy`] — partial-deployment placement strategies;
//! * [`fluid`] — rate-side mirrors of the defenses for the fluid
//!   background-traffic layer (`dtcs_netsim::fluid`).

#![warn(missing_docs)]

pub mod deploy;
pub mod filtering;
pub mod fluid;
pub mod ingress;
pub mod overlay;
pub mod ppm;
pub mod pushback;
pub mod spie;

pub use deploy::{choose_nodes, Placement};
pub use filtering::{install_traceback_filters, BlockScope, PrefixBlockAgent};
pub use fluid::{deploy_fluid_ingress, FluidIngress};
pub use ingress::{deploy_ingress, IngressFilterAgent};
pub use overlay::{I3Defense, PerimeterFilterAgent, RelayApp, RelayNext, SosOverlay};
pub use ppm::{
    deploy_ppm_everywhere, reconstruct_sources, MarkCollectorAgent, MarkHandle, MarkTable,
    PpmMarkerAgent,
};
pub use pushback::{
    deploy_pushback_everywhere, deploy_pushback_on, AggregateKey, PushbackAgent, PushbackConfig,
    PushbackHandle, PushbackMsg, PushbackStats,
};
pub use spie::{SpieAgent, SpieConfig, SpieFleet, SpieHandle, SpieState};
