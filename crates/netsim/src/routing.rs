//! Routing: all-pairs next-hop tables.
//!
//! Shortest paths with deterministic tie-breaking stand in for BGP, with
//! one policy nod: paths that would *transit* a stub AS pay a heavy
//! penalty, because in the real Internet a customer AS does not carry
//! third-party traffic (valley-free routing). Without this, multihomed
//! stubs land on shortest paths and ingress filters at their providers
//! falsely drop legitimate transit traffic. The penalty (rather than a
//! hard ban) keeps degenerate test topologies — lines, all-stub graphs —
//! connected. The recorded distance is the *hop count* of the chosen
//! path, so hop-based metrics stay meaningful.
//!
//! Tables are computed with one Dijkstra per destination, parallelised
//! across destinations with rayon (outer-loop data parallelism per the
//! HPC guides; each run is independent and writes only its own row).
//!
//! Beyond the tables themselves, each destination's forwarding tree
//! carries a *link stamp*: a bitset over the dense link index recording
//! which links the tree crosses. Stamps make route-change invalidation
//! proportional to the damage — a single link flip recomputes only the
//! trees whose stamp covers the flipped link ([`Routing::apply_link_flip`]),
//! and downstream caches ([`crate::oracle::RouteOracle`]) learn *which*
//! destinations changed through the delta history
//! ([`Routing::dsts_invalidated_since`]) instead of clearing wholesale.

use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::node::{LinkId, NodeId, NodeRole};
use crate::topology::Topology;

/// Cost added for each stub AS a path transits (valley avoidance).
const STUB_TRANSIT_PENALTY: u32 = 1000;

/// Sentinel for "no route" in the flat next-hop table.
const NO_ROUTE: u32 = u32::MAX;

/// How many per-epoch delta records to retain for consumers syncing via
/// [`Routing::dsts_invalidated_since`]. Consumers further behind than this
/// fall back to a wholesale cache clear.
const DELTA_HISTORY: usize = 32;

/// What a recorded epoch transition invalidated.
#[derive(Clone, Debug)]
enum DeltaScope {
    /// Whole-table recompute: every row may have changed.
    Full,
    /// Only these destinations' rows changed (dense node indices).
    Dsts(Vec<u32>),
}

/// One epoch transition in the delta history.
#[derive(Clone, Debug)]
struct Delta {
    /// The epoch this transition produced.
    epoch: u64,
    scope: DeltaScope,
}

/// Outcome of [`Routing::apply_link_flip`], for stats plumbing.
#[derive(Clone, Copy, Debug)]
pub struct FlipOutcome {
    /// Destination trees re-derived by this flip (`n` on a full recompute,
    /// the damaged few on an incremental splice).
    pub trees_recomputed: usize,
    /// True when the flip fell back to a whole-table recompute.
    pub full: bool,
}

/// All-pairs next-hop forwarding state.
#[derive(Clone, Debug)]
pub struct Routing {
    n: usize,
    /// u64 words per destination stamp (≥ 1 even for linkless topologies).
    words: usize,
    /// Generation counter for cache invalidation: consumers that memoize
    /// answers derived from this table (e.g. [`crate::oracle::RouteOracle`])
    /// compare epochs and drop stale entries on mismatch. Freshly computed
    /// tables start at epoch 0; [`Routing::apply_link_flip`] bumps the epoch
    /// on every applied link delta.
    epoch: u64,
    /// `next_hop[d * n + u]` = link to take from node `u` toward destination
    /// node `d` (`NO_ROUTE` if unreachable or `u == d`).
    next_hop: Vec<u32>,
    /// `dist[d * n + u]` = hop distance from `u` to `d` (`u16::MAX` if
    /// unreachable).
    dist: Vec<u16>,
    /// `cost[d * n + u]` = Dijkstra cost (hops + transit penalties) from `u`
    /// to `d` (`u32::MAX` if unreachable). Needed by link-up flips: a
    /// restored link can only change routes toward `d` if it would relax
    /// one of its endpoints under the old costs.
    cost: Vec<u32>,
    /// `stamps[d * words .. (d + 1) * words]` = bitset (by dense link id) of
    /// links destination `d`'s forwarding tree crosses.
    stamps: Vec<u64>,
    /// Recent epoch transitions, oldest first, contiguous in epoch. Capped
    /// at [`DELTA_HISTORY`]; gaps (e.g. a manual [`Routing::set_epoch`])
    /// reset it.
    deltas: VecDeque<Delta>,
}

impl Routing {
    /// Compute routing tables for a topology.
    pub fn compute(topo: &Topology) -> Routing {
        let n = topo.n();
        let words = stamp_words(topo.links.len());
        let mut r = Routing {
            n,
            words,
            epoch: 0,
            next_hop: vec![NO_ROUTE; n * n],
            dist: vec![u16::MAX; n * n],
            cost: vec![u32::MAX; n * n],
            stamps: vec![0; n * words],
            deltas: VecDeque::new(),
        };
        r.fill_all_rows(topo);
        r
    }

    /// (Re)derive every destination's row in parallel into the existing
    /// buffers, which must already be reset to their sentinels.
    fn fill_all_rows(&mut self, topo: &Topology) {
        let n = self.n;
        let words = self.words;
        let has_transit = topo.has_transit_roles();
        self.next_hop
            .par_chunks_mut(n)
            .zip(self.dist.par_chunks_mut(n))
            .zip(self.cost.par_chunks_mut(n))
            .zip(self.stamps.par_chunks_mut(words))
            .enumerate()
            .for_each(|(d, (((hops_row, dist_row), cost_row), stamp_row))| {
                bfs_from(topo, NodeId(d), has_transit, hops_row, dist_row, cost_row);
                fill_stamp(hops_row, stamp_row);
            });
    }

    /// This table's generation (see the `epoch` field).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tag this table with a generation, typically `old.epoch() + 1` when
    /// swapping in a recompute after a topology change. Manual tagging
    /// leaves no delta record, so syncing consumers clear wholesale —
    /// the safe answer for an arbitrary replacement table.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.deltas.clear();
    }

    /// Apply a single link state flip *already written to `topo`*: recompute
    /// only the destination trees the flip can affect, splice them into the
    /// existing tables, bump the epoch, and record a delta so warm caches
    /// can evict precisely. Falls back to a full parallel recompute when
    /// the damage covers more than half the destinations (the per-tree
    /// splice is sequential, so beyond that point the parallel rebuild is
    /// both simpler and faster).
    ///
    /// Equivalence to a cold [`Routing::compute`] on the flipped topology is
    /// exact (same tables, bit for bit) and pinned by the flap-schedule
    /// proptest in `crate::proptests`:
    /// - *Link down*: with strict-improvement relaxation, a destination's
    ///   row can only change if the tree actually crossed the dead link —
    ///   i.e. the link is in the stamp. Non-final relaxations through the
    ///   link never leak into settled entries.
    /// - *Link up*: the stamp cannot see a link that was down at compute
    ///   time, so the test uses stored costs: the restored link `(a, b)`
    ///   can only matter for `d` if it would relax an endpoint under the
    ///   old costs, `cost(a) + w(a) <= cost(b)` or vice versa. Equality
    ///   counts — an equal-cost path through the new link can win the
    ///   deterministic tie-break.
    pub fn apply_link_flip(&mut self, topo: &Topology, link: LinkId) -> FlipOutcome {
        debug_assert_eq!(self.n, topo.n(), "table/topology size mismatch");
        let n = self.n;
        self.epoch += 1;
        if link.0 >= self.words * 64 {
            // Link added after compute(): no stamp coverage, rebuild fully.
            return self.full_rebuild(topo);
        }
        let l = &topo.links[link.0];
        let affected: Vec<u32> = if l.up {
            let (a, b) = (l.a, l.b);
            let has_transit = topo.has_transit_roles();
            (0..n)
                .filter(|&d| {
                    let ca = self.cost[d * n + a.0];
                    let cb = self.cost[d * n + b.0];
                    if ca == u32::MAX && cb == u32::MAX {
                        return false; // both endpoints unreachable from d
                    }
                    let wa = hop_weight(topo, has_transit, a, d);
                    let wb = hop_weight(topo, has_transit, b, d);
                    ca.saturating_add(wa) <= cb || cb.saturating_add(wb) <= ca
                })
                .map(|d| d as u32)
                .collect()
        } else {
            let (w, bit) = (link.0 >> 6, 1u64 << (link.0 & 63));
            (0..n)
                .filter(|&d| self.stamps[d * self.words + w] & bit != 0)
                .map(|d| d as u32)
                .collect()
        };
        if affected.len() * 2 > n {
            return self.full_rebuild(topo);
        }
        let has_transit = topo.has_transit_roles();
        let words = self.words;
        for &d in &affected {
            let d = d as usize;
            let hops_row = &mut self.next_hop[d * n..(d + 1) * n];
            let dist_row = &mut self.dist[d * n..(d + 1) * n];
            let cost_row = &mut self.cost[d * n..(d + 1) * n];
            hops_row.fill(NO_ROUTE);
            dist_row.fill(u16::MAX);
            cost_row.fill(u32::MAX);
            bfs_from(topo, NodeId(d), has_transit, hops_row, dist_row, cost_row);
            fill_stamp(hops_row, &mut self.stamps[d * words..(d + 1) * words]);
        }
        let trees_recomputed = affected.len();
        self.push_delta(DeltaScope::Dsts(affected));
        FlipOutcome {
            trees_recomputed,
            full: false,
        }
    }

    /// Whole-table recompute into the existing buffers; records a `Full`
    /// delta under the already-bumped epoch.
    fn full_rebuild(&mut self, topo: &Topology) -> FlipOutcome {
        self.next_hop.fill(NO_ROUTE);
        self.dist.fill(u16::MAX);
        self.cost.fill(u32::MAX);
        self.stamps.fill(0);
        self.fill_all_rows(topo);
        self.push_delta(DeltaScope::Full);
        FlipOutcome {
            trees_recomputed: self.n,
            full: true,
        }
    }

    fn push_delta(&mut self, scope: DeltaScope) {
        self.deltas.push_back(Delta {
            epoch: self.epoch,
            scope,
        });
        if self.deltas.len() > DELTA_HISTORY {
            self.deltas.pop_front();
        }
    }

    /// Which destinations' rows changed since `epoch`? Returns the union of
    /// affected destinations across every transition in `(epoch, self.epoch]`
    /// (possibly with duplicates), or `None` when the history cannot answer
    /// precisely — a full recompute in the window, a transition older than
    /// the retained history, or a manually tagged epoch. `None` means the
    /// caller must assume everything changed.
    pub fn dsts_invalidated_since(&self, epoch: u64) -> Option<Vec<NodeId>> {
        if epoch > self.epoch {
            return None; // consumer synced to a different (replaced) table
        }
        if epoch == self.epoch {
            return Some(Vec::new());
        }
        let mut need = epoch + 1;
        let mut out = Vec::new();
        for d in &self.deltas {
            if d.epoch < need {
                continue;
            }
            if d.epoch > need {
                return None; // gap: part of the window left no record
            }
            match &d.scope {
                DeltaScope::Full => return None,
                DeltaScope::Dsts(v) => out.extend(v.iter().map(|&x| NodeId(x as usize))),
            }
            need += 1;
        }
        if need == self.epoch + 1 {
            Some(out)
        } else {
            None // window extends past the retained history
        }
    }

    /// Does destination `dst`'s forwarding tree cross `link`? (Stamp probe;
    /// used by churn benchmarks to pick low-blast-radius links.)
    pub fn tree_contains(&self, dst: NodeId, link: LinkId) -> bool {
        if dst.0 >= self.n || link.0 >= self.words * 64 {
            return false;
        }
        self.stamps[dst.0 * self.words + (link.0 >> 6)] & (1u64 << (link.0 & 63)) != 0
    }

    /// Bit-exact table comparison (next-hop, distance, and cost planes).
    /// Verification helper for tests and benches asserting that incremental
    /// splices match a cold recompute.
    pub fn tables_match(&self, other: &Routing) -> bool {
        self.n == other.n
            && self.next_hop == other.next_hop
            && self.dist == other.dist
            && self.cost == other.cost
            && self.stamps == other.stamps
    }

    /// Link to take from `at` toward destination node `dst`, or `None` when
    /// `at == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        let v = self.next_hop[dst.0 * self.n + at.0];
        if v == NO_ROUTE {
            None
        } else {
            Some(LinkId(v as usize))
        }
    }

    /// Hop distance from `from` to `to`; `None` if unreachable.
    #[inline]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u16> {
        let d = self.dist[to.0 * self.n + from.0];
        if d == u16::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// The node sequence of the path from `from` to `to` (inclusive), or
    /// `None` if unreachable.
    pub fn path(&self, topo: &Topology, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let link = self.next_hop(at, to)?;
            at = topo.links[link.0].other(at);
            path.push(at);
            if path.len() > self.n + 1 {
                return None; // defensive: inconsistent table
            }
        }
        Some(path)
    }

    /// Does the shortest path from `from` to `to` traverse `via`?
    pub fn path_contains(&self, topo: &Topology, from: NodeId, to: NodeId, via: NodeId) -> bool {
        match self.path(topo, from, to) {
            Some(p) => p.contains(&via),
            None => false,
        }
    }

    /// Route-consistency check (Park & Lee route-based filtering): on the
    /// forwarding path from `src` to `dst`, which neighbour hands traffic
    /// to `at`? Returns `None` when `at` is not on that path (or is the
    /// path's first node), i.e. when a packet claiming `src` could not
    /// legitimately be entering `at` at all. Out-of-range `src`/`dst`
    /// (addresses outside the topology) also return `None`.
    pub fn enters_via(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        at: NodeId,
    ) -> Option<NodeId> {
        if src.0 >= self.n || dst.0 >= self.n || at.0 >= self.n {
            return None;
        }
        let mut cur = src;
        let mut guard = 0;
        while cur != dst {
            let link = self.next_hop(cur, dst)?;
            let next = topo.links[link.0].other(cur);
            if next == at {
                return Some(cur);
            }
            cur = next;
            guard += 1;
            if guard > self.n {
                return None;
            }
        }
        None
    }

    /// Number of nodes this table was built for.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// u64 words needed to stamp `links` links (at least one, so slicing per
/// destination stays well-defined on linkless topologies).
fn stamp_words(links: usize) -> usize {
    links.div_ceil(64).max(1)
}

/// Set `stamp_row` to the bitset of links appearing in `hops_row` — exactly
/// the edges of this destination's forwarding tree.
fn fill_stamp(hops_row: &[u32], stamp_row: &mut [u64]) {
    stamp_row.fill(0);
    for &h in hops_row {
        if h != NO_ROUTE {
            stamp_row[(h as usize) >> 6] |= 1u64 << (h & 63);
        }
    }
}

/// Dijkstra edge weight for extending a path one hop beyond `u` toward
/// destination `d`: 1, plus the stub-transit penalty when `u` (not the
/// destination itself) is a stub in a topology that distinguishes roles.
/// Must mirror the relaxation in [`bfs_from`] exactly.
#[inline]
fn hop_weight(topo: &Topology, has_transit: bool, u: NodeId, d: usize) -> u32 {
    if u.0 != d && has_transit && topo.nodes[u.0].role == NodeRole::Stub {
        1 + STUB_TRANSIT_PENALTY
    } else {
        1
    }
}

/// Dijkstra from destination `d`, filling that destination's next-hop,
/// distance, and cost rows (all pre-reset to their sentinels). Edge cost is
/// 1, plus [`STUB_TRANSIT_PENALTY`] when the hop would make a stub AS carry
/// third-party traffic. Ties break on `(cost, node id)`, so results are
/// deterministic. The distance row records the hop count of the selected
/// (cost-minimal) path.
fn bfs_from(
    topo: &Topology,
    d: NodeId,
    has_transit: bool,
    hops_row: &mut [u32],
    dist_row: &mut [u16],
    cost_row: &mut [u32],
) {
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    cost_row[d.0] = 0;
    dist_row[d.0] = 0;
    heap.push(Reverse((0, d.0)));
    while let Some(Reverse((cu, ui))) = heap.pop() {
        if cu > cost_row[ui] {
            continue; // stale entry
        }
        let u = NodeId(ui);
        // Cost of extending the path one hop beyond `u`: traffic would
        // then *transit* `u` (unless `u` is the destination itself).
        let transit_penalty = if u != d && has_transit && topo.nodes[ui].role == NodeRole::Stub {
            STUB_TRANSIT_PENALTY
        } else {
            0
        };
        for &lid in &topo.nodes[ui].links {
            if !topo.links[lid.0].up {
                continue; // failed links carry nothing
            }
            let v = topo.links[lid.0].other(u);
            let nc = cu.saturating_add(1).saturating_add(transit_penalty);
            if nc < cost_row[v.0] {
                cost_row[v.0] = nc;
                dist_row[v.0] = dist_row[ui] + 1;
                // From v, the way toward d is the link back to u.
                hops_row[v.0] = lid.0 as u32;
                heap.push(Reverse((nc, v.0)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn line_routes_are_sequential() {
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        assert_eq!(r.distance(NodeId(0), NodeId(4)), Some(4));
        let p = r.path(&topo, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn self_route_is_none() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(r.distance(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn star_all_pairs_via_hub() {
        let topo = Topology::star(5);
        let r = Routing::compute(&topo);
        for i in 1..=5 {
            for j in 1..=5 {
                if i != j {
                    assert_eq!(r.distance(NodeId(i), NodeId(j)), Some(2));
                    assert!(r.path_contains(&topo, NodeId(i), NodeId(j), NodeId(0)));
                }
            }
        }
    }

    #[test]
    fn disconnected_has_no_route() {
        let mut topo = Topology::line(2);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.next_hop(NodeId(0), lonely), None);
        assert_eq!(r.distance(NodeId(0), lonely), None);
    }

    #[test]
    fn paths_are_shortest_on_ba() {
        let topo = Topology::barabasi_albert(120, 2, 0.1, 17);
        let r = Routing::compute(&topo);
        // Spot-check: path length equals reported distance.
        for (from, to) in [(0usize, 119usize), (5, 80), (33, 34)] {
            let d = r.distance(NodeId(from), NodeId(to)).unwrap() as usize;
            let p = r.path(&topo, NodeId(from), NodeId(to)).unwrap();
            assert_eq!(p.len(), d + 1);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let topo = Topology::barabasi_albert(80, 2, 0.1, 23);
        let a = Routing::compute(&topo);
        let b = Routing::compute(&topo);
        assert_eq!(a.next_hop, b.next_hop);
    }

    #[test]
    fn enters_via_edge_cases() {
        // Line 0-1-2-3-4.
        let topo = Topology::line(5);
        let r = Routing::compute(&topo);
        // Mid-path: 0→4 enters 2 from 1.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(2)),
            Some(NodeId(1))
        );
        // src == at: the path's first node has no entering neighbour.
        assert_eq!(r.enters_via(&topo, NodeId(2), NodeId(4), NodeId(2)), None);
        // at == dst: the last hop still enters via its neighbour.
        assert_eq!(
            r.enters_via(&topo, NodeId(0), NodeId(4), NodeId(4)),
            Some(NodeId(3))
        );
        // at off-path: 0→2 never touches 4.
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(4)), None);
        // src == dst: empty path contains no entry point.
        assert_eq!(r.enters_via(&topo, NodeId(3), NodeId(3), NodeId(2)), None);
    }

    #[test]
    fn enters_via_unreachable_dst() {
        let mut topo = Topology::line(3);
        let lonely = topo.add_node(crate::node::NodeRole::Stub);
        let r = Routing::compute(&topo);
        assert_eq!(r.enters_via(&topo, NodeId(0), lonely, NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, lonely, NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn enters_via_out_of_range_nodes() {
        let topo = Topology::line(3);
        let r = Routing::compute(&topo);
        // Spoofed sources can name addresses outside the topology entirely.
        assert_eq!(r.enters_via(&topo, NodeId(99), NodeId(2), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(99), NodeId(1)), None);
        assert_eq!(r.enters_via(&topo, NodeId(0), NodeId(2), NodeId(99)), None);
    }

    #[test]
    fn epoch_roundtrip() {
        let topo = Topology::line(3);
        let mut r = Routing::compute(&topo);
        assert_eq!(r.epoch(), 0, "fresh tables start at generation 0");
        r.set_epoch(7);
        assert_eq!(r.epoch(), 7);
    }

    #[test]
    fn next_hop_moves_closer() {
        let topo = Topology::barabasi_albert(100, 2, 0.1, 29);
        let r = Routing::compute(&topo);
        for u in 0..topo.n() {
            let dst = NodeId((u + 37) % topo.n());
            if NodeId(u) == dst {
                continue;
            }
            let l = r.next_hop(NodeId(u), dst).unwrap();
            let v = topo.links[l.0].other(NodeId(u));
            assert_eq!(
                r.distance(v, dst).unwrap() + 1,
                r.distance(NodeId(u), dst).unwrap()
            );
        }
    }

    #[test]
    fn stamps_cover_exactly_the_tree_links() {
        let topo = Topology::barabasi_albert(60, 2, 0.1, 31);
        let r = Routing::compute(&topo);
        for d in 0..topo.n() {
            // A link is stamped iff some node's next hop toward d uses it.
            let mut used = vec![false; topo.links.len()];
            for u in 0..topo.n() {
                if let Some(l) = r.next_hop(NodeId(u), NodeId(d)) {
                    used[l.0] = true;
                }
            }
            for (l, &u) in used.iter().enumerate() {
                assert_eq!(r.tree_contains(NodeId(d), LinkId(l)), u, "d={d} l={l}");
            }
        }
    }

    #[test]
    fn flip_down_and_up_matches_cold_recompute() {
        let mut topo = Topology::barabasi_albert(60, 2, 0.1, 41);
        let mut r = Routing::compute(&topo);
        for lid in [3usize, 17, 44, 80] {
            let lid = lid % topo.links.len();
            topo.links[lid].up = false;
            r.apply_link_flip(&topo, LinkId(lid));
            assert!(
                r.tables_match(&Routing::compute(&topo)),
                "down flip of link {lid} diverged"
            );
            topo.links[lid].up = true;
            r.apply_link_flip(&topo, LinkId(lid));
            assert!(
                r.tables_match(&Routing::compute(&topo)),
                "up flip of link {lid} diverged"
            );
        }
        assert_eq!(r.epoch(), 8, "each flip bumps the epoch once");
    }

    #[test]
    fn flip_reports_global_damage_as_full_rebuild() {
        // Line 0-1-2-3-4-5: every destination's tree spans all nodes, so
        // the end link 4-5 is in every tree (node 5 exits through it). Its
        // failure damages everything: the flip must fall back to a full
        // rebuild and still match a cold recompute. Restoring it likewise
        // changes every destination (5 becomes reachable / reaches all).
        let mut topo = Topology::line(6);
        let mut r = Routing::compute(&topo);
        let last = topo.links.len() - 1;
        topo.links[last].up = false;
        let out = r.apply_link_flip(&topo, LinkId(last));
        assert!(out.full, "spanning-tree link damages every destination");
        assert!(r.tables_match(&Routing::compute(&topo)));

        topo.links[last].up = true;
        let out = r.apply_link_flip(&topo, LinkId(last));
        assert!(out.full, "reattaching a node touches every tree");
        assert!(r.tables_match(&Routing::compute(&topo)));
    }

    /// Hub-and-spoke star plus one redundant leaf-leaf shortcut: the
    /// shortcut only appears in the two leaf destinations' trees, so its
    /// flips must splice exactly those two rows.
    fn star_with_shortcut() -> (Topology, LinkId) {
        let mut topo = Topology::star(5);
        let chord = topo
            .connect(NodeId(1), NodeId(2), crate::link::LinkProfile::access())
            .expect("leaves 1 and 2 start unconnected");
        (topo, chord)
    }

    #[test]
    fn redundant_link_flip_is_incremental() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        assert!(r.tree_contains(NodeId(1), chord));
        assert!(!r.tree_contains(NodeId(3), chord));

        topo.links[chord.0].up = false;
        let out = r.apply_link_flip(&topo, chord);
        assert!(!out.full, "shortcut removal should splice incrementally");
        assert_eq!(out.trees_recomputed, 2, "only the two leaf dsts change");
        assert!(r.tables_match(&Routing::compute(&topo)));

        topo.links[chord.0].up = true;
        let out = r.apply_link_flip(&topo, chord);
        assert!(!out.full, "shortcut restore should splice incrementally");
        assert_eq!(out.trees_recomputed, 2);
        assert!(r.tables_match(&Routing::compute(&topo)));
    }

    #[test]
    fn delta_history_reports_damage_precisely() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        assert_eq!(r.dsts_invalidated_since(0), Some(vec![]));

        topo.links[chord.0].up = false;
        let out = r.apply_link_flip(&topo, chord);
        let dsts = r.dsts_invalidated_since(0).expect("delta recorded");
        assert_eq!(dsts.len(), out.trees_recomputed);
        assert_eq!(dsts, vec![NodeId(1), NodeId(2)]);
        // The dead link left the spliced trees.
        for d in &dsts {
            assert!(!r.tree_contains(*d, chord));
        }

        // A manual epoch tag wipes the history: precise answers are gone.
        r.set_epoch(r.epoch() + 1);
        assert_eq!(r.dsts_invalidated_since(0), None);
        // And a consumer from a "future" epoch (stale table swap) gets None.
        assert_eq!(r.dsts_invalidated_since(r.epoch() + 5), None);
    }

    #[test]
    fn delta_history_is_bounded() {
        let (mut topo, chord) = star_with_shortcut();
        let mut r = Routing::compute(&topo);
        for _ in 0..2 * DELTA_HISTORY {
            topo.links[chord.0].up = !topo.links[chord.0].up;
            r.apply_link_flip(&topo, chord);
        }
        // Recent windows answer precisely; ancient ones fall off the cap.
        assert!(r.dsts_invalidated_since(r.epoch() - 4).is_some());
        assert_eq!(r.dsts_invalidated_since(0), None);
    }
}
