//! Property-based tests over the whole stack: simulator conservation laws,
//! device safety invariants, routing soundness, and determinism — the
//! invariants DESIGN.md commits to, fuzzed with proptest.

use proptest::prelude::*;

use dtcs::device::{
    FilterRule, GraphNodeSpec, MatchExpr, ModuleSpec, PacketView, SafetyVerifier, ServiceGraph,
    ServiceSpec, TriggerAction, TriggerMetric,
};
use dtcs::netsim::{
    Addr, NodeId, Packet, PacketBuilder, Prefix, Proto, Routing, SimDuration, SimTime, Simulator,
    Topology, TrafficClass,
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_proto() -> impl Strategy<Value = Proto> {
    prop_oneof![
        Just(Proto::TcpSyn),
        Just(Proto::TcpSynAck),
        Just(Proto::TcpRst),
        Just(Proto::TcpData),
        Just(Proto::Udp),
        Just(Proto::DnsQuery),
        Just(Proto::DnsResponse),
        Just(Proto::IcmpEcho),
        Just(Proto::IcmpEchoReply),
    ]
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(bits, len))
}

fn arb_match() -> impl Strategy<Value = MatchExpr> {
    (
        proptest::option::of(arb_prefix()),
        proptest::option::of(arb_prefix()),
        proptest::collection::vec(arb_proto(), 0..3),
        proptest::option::of(0u32..2000),
        proptest::option::of(0u32..4000),
    )
        .prop_map(|(src_in, dst_in, protos, min_size, max_size)| MatchExpr {
            src_in,
            dst_in,
            protos,
            min_size,
            max_size,
            payload_hashes: vec![],
        })
}

/// Only safe (verifier-passing) module kinds.
fn arb_safe_module() -> impl Strategy<Value = ModuleSpec> {
    prop_oneof![
        proptest::collection::vec((arb_match(), any::<bool>()), 0..4).prop_map(|rules| {
            ModuleSpec::Filter {
                rules: rules
                    .into_iter()
                    .map(|(expr, drop)| FilterRule { expr, drop })
                    .collect(),
            }
        }),
        (arb_match(), 1.0f64..1e7, 1u32..100_000).prop_map(|(expr, rate, burst)| {
            ModuleSpec::RateLimit {
                expr,
                rate_bytes_per_sec: rate,
                burst_bytes: burst,
            }
        }),
        proptest::collection::vec(arb_prefix(), 0..4)
            .prop_map(|sources| ModuleSpec::Blacklist { sources }),
        Just(ModuleSpec::AntiSpoof),
        (arb_match(), 0u32..200)
            .prop_map(|(expr, keep_bytes)| ModuleSpec::PayloadDelete { expr, keep_bytes }),
        (1usize..2000, 1u32..64).prop_map(|(capacity, sample_one_in)| ModuleSpec::Logger {
            capacity,
            sample_one_in
        }),
        (1u64..3_000_000_000u64, 1usize..8, 64u32..(1 << 16), 1u8..6).prop_map(
            |(w, windows, bits, hashes)| ModuleSpec::DigestBacklog {
                window: SimDuration(w),
                windows,
                bits,
                hashes
            }
        ),
    ]
}

/// Any module kind, including the forbidden ones.
fn arb_any_module() -> impl Strategy<Value = ModuleSpec> {
    prop_oneof![
        arb_safe_module(),
        (any::<u32>(), any::<u32>()).prop_map(|(s, d)| ModuleSpec::RewriteHeader {
            new_src: Some(Addr(s)),
            new_dst: Some(Addr(d)),
        }),
        any::<i16>().prop_map(|delta| ModuleSpec::TtlModify { delta }),
        (1u32..1000).prop_map(|factor| ModuleSpec::Amplify { factor }),
        any::<u32>().prop_map(|a| ModuleSpec::Redirect { to: Addr(a) }),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        arb_proto(),
        40u32..3000,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(src, dst, proto, size, flow, tag)| {
            PacketBuilder::new(Addr(src), Addr(dst), proto, TrafficClass::Background)
                .size(size)
                .flow(flow)
                .tag(tag)
                .build(1, Addr(src).node())
        })
}

fn is_forbidden(m: &ModuleSpec) -> bool {
    matches!(
        m,
        ModuleSpec::RewriteHeader { .. }
            | ModuleSpec::TtlModify { .. }
            | ModuleSpec::Amplify { .. }
            | ModuleSpec::Redirect { .. }
    )
}

// ---------------------------------------------------------------------
// Device safety properties (Sec. 4.5)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The verifier rejects every forbidden module regardless of context,
    /// and every verified spec instantiates without panicking.
    #[test]
    fn verifier_is_sound(modules in proptest::collection::vec(arb_any_module(), 1..6)) {
        let spec = ServiceSpec::chain("fuzz", modules.clone());
        let verifier = SafetyVerifier::default();
        match verifier.verify(&spec) {
            Ok(()) => {
                prop_assert!(modules.iter().all(|m| !is_forbidden(m)),
                    "verified spec contained a forbidden module");
                let _graph = ServiceGraph::from_spec(&spec); // must not panic
            }
            Err(_) => {
                // Rejection must have a cause: either a forbidden module
                // or an out-of-bounds parameter; safe modules as generated
                // here have valid parameters, so the cause must be a
                // forbidden module... unless the generator made an
                // oversized logger/backlog, which it cannot (bounds above).
                prop_assert!(modules.iter().any(is_forbidden),
                    "spec of only-safe modules was rejected");
            }
        }
    }

    /// No safe graph can grow a packet or touch its protected headers.
    #[test]
    fn graphs_never_amplify_or_rewrite(
        modules in proptest::collection::vec(arb_safe_module(), 1..6),
        mut packets in proptest::collection::vec(arb_packet(), 1..30),
    ) {
        let spec = ServiceSpec::chain("fuzz", modules);
        prop_assume!(SafetyVerifier::default().verify(&spec).is_ok());
        let mut graph = ServiceGraph::from_spec(&spec);
        let ctx = dtcs::device::DeviceContext {
            node: NodeId(0),
            local_prefixes: vec![Prefix::of_node(NodeId(0))],
            is_transit: true,
        };
        let mut events = Vec::new();
        for (i, pkt) in packets.iter_mut().enumerate() {
            let before = *pkt;
            let mut view = PacketView::wrap(pkt);
            let _ = graph.process(
                SimTime(i as u64 * 1_000_000),
                &ctx,
                &dtcs::device::EntryKind::Transit,
                false,
                None,
                dtcs::device::OwnerId(1),
                &mut events,
                &mut view,
            );
            let _ = view;
            prop_assert_eq!(pkt.src, before.src, "source must be immutable");
            prop_assert_eq!(pkt.dst, before.dst, "destination must be immutable");
            prop_assert_eq!(pkt.ttl, before.ttl, "TTL must be immutable");
            prop_assert!(pkt.size <= before.size, "packets may only shrink");
        }
    }

    /// Trigger graphs with valid targets also hold the invariants.
    #[test]
    fn trigger_graphs_hold_invariants(
        threshold in 1.0f64..10_000.0,
        window in 1u64..2_000_000_000u64,
        mut packets in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        let spec = ServiceSpec {
            name: "fuzz-trigger".into(),
            modules: vec![
                GraphNodeSpec {
                    module: ModuleSpec::Trigger {
                        expr: MatchExpr::any(),
                        metric: TriggerMetric::PacketRate,
                        threshold,
                        window: SimDuration(window),
                        action: TriggerAction::ActivateModule(1),
                        tag: 1,
                    },
                    enabled: true,
                },
                GraphNodeSpec {
                    module: ModuleSpec::PayloadDelete {
                        expr: MatchExpr::any(),
                        keep_bytes: 40,
                    },
                    enabled: false,
                },
            ],
        };
        prop_assert!(SafetyVerifier::default().verify(&spec).is_ok());
        let mut graph = ServiceGraph::from_spec(&spec);
        let ctx = dtcs::device::DeviceContext {
            node: NodeId(0),
            local_prefixes: vec![],
            is_transit: true,
        };
        let mut events = Vec::new();
        for (i, pkt) in packets.iter_mut().enumerate() {
            let before = *pkt;
            let mut view = PacketView::wrap(pkt);
            let _ = graph.process(
                SimTime(i as u64 * 10_000_000),
                &ctx,
                &dtcs::device::EntryKind::Transit,
                false,
                None,
                dtcs::device::OwnerId(1),
                &mut events,
                &mut view,
            );
            let _ = view;
            prop_assert!(pkt.size <= before.size);
            prop_assert_eq!((pkt.src, pkt.dst, pkt.ttl), (before.src, before.dst, before.ttl));
        }
    }
}

// ---------------------------------------------------------------------
// Simulator conservation + routing soundness
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sent = delivered + dropped + in-flight for every class, on random
    /// topologies with random traffic.
    #[test]
    fn stats_conservation(
        n in 20usize..80,
        seed in 0u64..1000,
        n_pkts in 10u64..200,
    ) {
        let topo = Topology::barabasi_albert(n, 2, 0.1, seed);
        let mut sim = Simulator::new(topo, seed);
        // Listeners on every node's service host.
        for i in 0..n {
            sim.install_app(Addr::new(NodeId(i), 1), Box::new(dtcs::netsim::SinkApp));
        }
        let mut rngstate = seed;
        let mut next = move || {
            rngstate = rngstate.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rngstate >> 33
        };
        for k in 0..n_pkts {
            let from = NodeId((next() as usize) % n);
            let to = Addr::new(NodeId((next() as usize) % n), 1);
            let at = SimTime(k * 1_000_000);
            sim.schedule(at, move |s| {
                s.emit_now(
                    from,
                    PacketBuilder::new(Addr::new(from, 2), to, Proto::Udp, TrafficClass::Background)
                        .size(100)
                        .flow(k),
                );
            });
        }
        sim.run_until(SimTime::from_secs(30));
        prop_assert!(sim.stats.check_conservation().is_ok());
        let c = sim.stats.class(TrafficClass::Background);
        // Everything resolved by now (30 s >> any path delay).
        prop_assert_eq!(c.sent_pkts, c.delivered_pkts + c.dropped_pkts);
    }

    /// Routing: next hops strictly decrease the recorded distance, and
    /// paths terminate.
    #[test]
    fn routing_is_sound(n in 10usize..100, seed in 0u64..500) {
        let topo = Topology::barabasi_albert(n, 2, 0.15, seed);
        let routing = Routing::compute(&topo);
        for u in 0..n {
            let dst = NodeId((u * 7 + 3) % n);
            if NodeId(u) == dst { continue; }
            let path = routing.path(&topo, NodeId(u), dst);
            prop_assert!(path.is_some(), "connected BA graph must route");
            let path = path.unwrap();
            prop_assert_eq!(*path.last().unwrap(), dst);
            prop_assert_eq!(path.len() as u16 - 1, routing.distance(NodeId(u), dst).unwrap());
            // No loops.
            let mut sorted = path.clone();
            sorted.sort_by_key(|p| p.0);
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "path must be loop-free");
        }
    }

    /// The trie agrees with the linear table on arbitrary rule sets.
    #[test]
    fn trie_matches_linear_reference(
        entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..60),
        probes in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let mut trie = dtcs::device::trie::PrefixTrie::new();
        let mut linear = dtcs::device::trie::LinearTable::new();
        for (i, &(bits, len)) in entries.iter().enumerate() {
            let p = Prefix::new(bits, len);
            trie.insert(p, i);
            linear.insert(p, i);
        }
        for &a in &probes {
            let t = trie.lookup(Addr(a)).map(|(p, _)| p.len);
            let l = linear.lookup(Addr(a)).map(|(p, _)| p.len);
            prop_assert_eq!(t, l, "LPM length must agree at {:#x}", a);
        }
    }
}
