//! The mitigation schemes compared by the paper's Sec. 3 analysis, as one
//! installable enum. `Scheme::install_*` hooks are called by the
//! comparison scenario at the right lifecycle points.

use dtcs_mitigation::{BlockScope, Placement, PushbackConfig};
use dtcs_netsim::SimTime;

use crate::tcs::TcsStaticConfig;

/// A mitigation scheme under comparison (experiment E2's row dimension).
#[derive(Clone, Debug)]
pub enum Scheme {
    /// No defense at all.
    None,
    /// Static RFC 2267 ingress filtering at a fraction of ASes (Sec. 3.2).
    Ingress {
        /// Deployment fraction.
        fraction: f64,
        /// Placement policy.
        placement: Placement,
    },
    /// Pushback on every router (Sec. 3.1).
    Pushback(PushbackConfig),
    /// PPM traceback + reactive filters on the identified sources
    /// (Sec. 3.1 — counterproductive for reflector attacks).
    TracebackFilter {
        /// Router marking probability.
        marking_p: f64,
        /// When the victim reconstructs and filters.
        reconstruct_at: SimTime,
        /// Filter intensity.
        scope: BlockScope,
        /// Minimum marked-volume share for a node to count as a source.
        min_share: f64,
    },
    /// SOS/Mayday secure overlay (Sec. 3.2).
    Sos {
        /// Overlay access points.
        n_soaps: usize,
        /// Secret servlets.
        n_servlets: usize,
    },
    /// i3-style indirection defense (Sec. 3.1).
    I3 {
        /// Is the victim's real address hidden from the attacker?
        /// (The paper's critique: it realistically is not.)
        ip_hidden: bool,
    },
    /// The paper's contribution: distributed traffic control service,
    /// statically deployed.
    Tcs(TcsStaticConfig),
}

impl Scheme {
    /// Stable label for report rows.
    pub fn label(&self) -> String {
        match self {
            Scheme::None => "none".into(),
            Scheme::Ingress { fraction, .. } => format!("ingress({:.0}%)", fraction * 100.0),
            Scheme::Pushback(_) => "pushback".into(),
            Scheme::TracebackFilter { scope, .. } => match scope {
                BlockScope::AllTraffic => "traceback+null-route".into(),
                BlockScope::TowardVictim(_) => "traceback+filter".into(),
            },
            Scheme::Sos { .. } => "sos-overlay".into(),
            Scheme::I3 { ip_hidden } => {
                if *ip_hidden {
                    "i3(hidden-ip)".into()
                } else {
                    "i3(known-ip)".into()
                }
            }
            Scheme::Tcs(cfg) => format!("tcs({:.0}%)", cfg.fraction * 100.0),
        }
    }

    /// The standard comparison set for experiment E2.
    pub fn comparison_set(attack_start: SimTime) -> Vec<Scheme> {
        let reconstruct_at = SimTime(attack_start.as_nanos() + 5_000_000_000);
        vec![
            Scheme::None,
            Scheme::Ingress {
                fraction: 0.2,
                placement: Placement::Random,
            },
            Scheme::Pushback(PushbackConfig::default()),
            Scheme::TracebackFilter {
                marking_p: 0.04,
                reconstruct_at,
                scope: BlockScope::AllTraffic,
                min_share: 0.002,
            },
            Scheme::Sos {
                n_soaps: 3,
                n_servlets: 2,
            },
            Scheme::I3 { ip_hidden: false },
            Scheme::Tcs(TcsStaticConfig {
                fraction: 0.3,
                placement: Placement::TopDegree,
                activate_at: reconstruct_at, // reactive: deployed mid-attack
                ..Default::default()
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let set = Scheme::comparison_set(SimTime::from_secs(5));
        let mut labels: Vec<String> = set.iter().map(Scheme::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), set.len());
    }
}
